package optimizer

import (
	"context"
	"errors"
	"fmt"
	"time"

	"joinopt/internal/estimate"
	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/obs"
	"joinopt/internal/retrieval"
)

// Env wires the adaptive optimizer to an execution environment: executor
// construction for arbitrary plans, the training-time IE characterization,
// and the offline-measurable retrieval/join parameters. The
// database-specific parameters are *not* supplied — the driver estimates
// them on the fly.
type Env struct {
	// NewExecutor builds a fresh executor for a plan.
	NewExecutor func(PlanSpec) (join.Executor, error)

	// NumDocs are the database sizes.
	NumDocs [2]int

	// Rates returns the training-time characterization tp(θ), fp(θ) of
	// side's IE system.
	Rates func(side int, theta float64) (tp, fp float64)

	// Thetas are the available knob settings (the pilot uses Thetas[0]).
	Thetas []float64

	Costs      [2]model.Costs
	CasualHits [2]float64
	Mentioned  [2]int
	SeedCount  int

	// AQG are the per-side learned-query statistics (offline measurable).
	AQG [2][]model.QueryParam

	// Ctp and Cfp are the Filtered Scan classifier rates per side,
	// characterized offline on the training split.
	Ctp [2]float64
	Cfp [2]float64

	// QPrec and TopK are the value-query parameters per side.
	QPrec [2]float64
	TopK  [2]int

	// BadInGoodPrior seeds the estimator (see estimate.Observation).
	BadInGoodPrior float64

	// ExecWorkers is the pipelined worker count executions will run under,
	// forwarded into every Inputs the adaptive protocol assembles so plan
	// time predictions account for extraction overlap (see
	// Inputs.ExecWorkers). 0/1 = sequential.
	ExecWorkers int

	// CacheHitRate, when set, reports the observed extraction-cache hit
	// rate of side so far (0 when cold). Checkpoint re-optimizations fold
	// it into Inputs.CacheHitRate: documents the cache already holds are
	// free to re-extract under a plan switch.
	CacheHitRate func(side int) float64

	// Shards is the corpus shard count executions will run under, forwarded
	// into every Inputs the adaptive protocol assembles (see Inputs.Shards).
	// 0/1 = unsharded.
	Shards int

	// Trace and Metrics, when set, observe the adaptive protocol itself:
	// pilot completion, plan decisions, checkpoints (and their non-fatal
	// failures), and plan switches, plus per-phase model/wall time. Both are
	// nil-safe and nil by default.
	Trace   *obs.Trace
	Metrics *obs.Registry
}

// emit stamps an optimizer-level trace event at cumulative model time t.
func (env *Env) emit(t float64, kind obs.Kind, attrs map[string]any) {
	if env.Trace.Enabled() {
		env.Trace.EmitAt(t, kind, 0, attrs)
	}
}

// Options tune the adaptive driver.
type Options struct {
	// PilotFraction of each database scanned by the pilot (default 0.10).
	PilotFraction float64
	// RecheckFraction of additional effort between re-optimizations
	// (default 0.25 of the chosen plan's predicted effort).
	RecheckFraction float64
	// MaxSwitches bounds plan changes after the pilot (default 2).
	MaxSwitches int
	// StableDivergence is the cross-validation divergence above which the
	// pilot window is extended before trusting the estimates (§VI's
	// robustness checking; default 0.45, capped at 3 extensions).
	StableDivergence float64
	// ChooseWorkers bounds the plan-space evaluation worker pool used at
	// the pilot and at every adaptive checkpoint (0 = one worker per CPU,
	// 1 = sequential; see Inputs.Workers).
	ChooseWorkers int

	// Persist, when set, receives a fresh resumable checkpoint at every
	// protocol transition the driver can later resume from: loop entry
	// (plan chosen or replay complete), a checkpoint decision committing to
	// the current plan, a plan switch, and each finish-phase round. A crash
	// after any of these points can resume from the persisted checkpoint
	// and — execution being deterministic — finish with the identical
	// result. The callback runs synchronously on the driver goroutine and
	// must treat the checkpoint as read-only (its Inputs are shared with
	// the live run).
	Persist func(*Checkpoint)
}

func (o *Options) defaults() {
	if o.PilotFraction <= 0 {
		o.PilotFraction = 0.10
	}
	if o.RecheckFraction <= 0 {
		o.RecheckFraction = 0.25
	}
	if o.MaxSwitches == 0 {
		o.MaxSwitches = 2
	}
	if o.StableDivergence <= 0 {
		o.StableDivergence = 0.45
	}
}

// Decision records one optimization step.
type Decision struct {
	AtTime   float64 // cumulative cost-model time when decided
	Chosen   Eval
	Switched bool
}

// Result is the outcome of an adaptive run.
type Result struct {
	Final     *join.State
	Pilot     *join.State // nil on resumed runs: the pilot is not re-run
	Decisions []Decision
	TotalTime float64
	Inputs    *Inputs // the estimated inputs behind the final decision

	// CheckpointErrs records Choose failures at adaptive checkpoints (e.g.
	// no plan feasible under the sharpened estimates). The driver falls
	// back to finishing the current plan rather than aborting, but the
	// errors are surfaced here instead of being silently dropped.
	CheckpointErrs []error

	// Checkpoint is set when the run was interrupted by context
	// cancellation; ResumeAdaptive continues from it. Nil on completed runs.
	Checkpoint *Checkpoint
}

// Phase identifies the protocol stage an interrupted adaptive run was in.
type Phase int

const (
	// PhaseExecute is the execution of the chosen plan headed for the
	// re-optimization checkpoint.
	PhaseExecute Phase = iota
	// PhaseCommitted is the run to planned effort after a checkpoint
	// decided to keep the current plan.
	PhaseCommitted
	// PhaseFinish is the achieved-quality effort-extension loop.
	PhaseFinish
)

// Checkpoint is a resumable snapshot of an interrupted adaptive run. It is
// an in-memory handle, not a wire format: the in-flight executor is captured
// as a compact join.Snapshot and reconstructed on resume by deterministic
// replay over an equivalent environment, so the resumed run re-encounters
// the same documents — and, under a seeded fault profile, the same injected
// faults — before continuing.
type Checkpoint struct {
	Phase          Phase
	Best           Eval    // the plan being executed
	Inputs         *Inputs // latest estimates behind Best
	Decisions      []Decision
	CheckpointErrs []error
	Switches       int
	TotalTime      float64       // billed time excluding the in-flight executor
	Exec           join.Snapshot // in-flight executor state

	// ShardDocs is the in-flight executor's per-shard resolution progress at
	// checkpoint time (nil when the execution is unsharded). Resume primes
	// the rebuilt executor's shard group with it, so the deterministic
	// replay re-resolves completed shards' documents from their warm cache
	// slices instead of re-speculating the extraction work.
	ShardDocs []int

	// Finish-phase coordinates (valid when Phase == PhaseFinish): the
	// extended effort target, the extension round, and the stall-detection
	// progress snapshot taken before the interrupted run.
	Target [2]int
	Ext    int
	Prev   [2]int
}

// RunAdaptive executes the end-to-end §VI protocol: scan a pilot window,
// estimate the database-specific parameters by MLE, choose the fastest plan
// predicted to meet req, execute it, and re-optimize at checkpoints —
// switching plans (from scratch, keeping the time bill) when the sharpened
// estimates reveal a better option.
func RunAdaptive(env *Env, req Requirement, opts Options) (*Result, error) {
	return RunAdaptiveCtx(context.Background(), env, req, opts)
}

// RunAdaptiveCtx is RunAdaptive under a context: cancellation stops the run
// cooperatively at the next executor step and returns the context error with
// Result.Checkpoint set, from which ResumeAdaptive continues. The pilot
// itself is not checkpointable; cancellation during the pilot takes effect
// at the first post-pilot step (the completed pilot's estimates are carried
// in the checkpoint, so the pilot cost is never paid twice).
func RunAdaptiveCtx(ctx context.Context, env *Env, req Requirement, opts Options) (*Result, error) {
	opts.defaults()
	if env.NewExecutor == nil || env.Rates == nil || len(env.Thetas) == 0 {
		return nil, fmt.Errorf("optimizer: incomplete environment")
	}
	res := &Result{}
	om := obs.NewOptMetrics(env.Metrics)
	wallStart := time.Now()

	in, pilotState, err := PilotEstimate(env, opts)
	if err != nil {
		return nil, err
	}
	res.Pilot = pilotState
	res.TotalTime += pilotState.Time
	in.Workers = opts.ChooseWorkers
	res.Inputs = in
	om.Phase("pilot", pilotState.Time, time.Since(wallStart).Seconds())
	env.emit(res.TotalTime, obs.KindPilotDone, map[string]any{
		"docs1": pilotState.DocsProcessed[0], "docs2": pilotState.DocsProcessed[1], "time": pilotState.Time})

	best, _, err := Choose(Enumerate(env.Thetas), in, req)
	if err != nil {
		return res, err
	}
	res.Decisions = append(res.Decisions, Decision{AtTime: res.TotalTime, Chosen: best})
	om.Decision(false)
	env.emit(res.TotalTime, obs.KindPlanChosen, map[string]any{
		"plan": best.Plan.String(), "effort1": best.Effort[0], "effort2": best.Effort[1], "predicted_time": best.Time})

	return env.adaptiveLoop(ctx, res, req, opts, &Checkpoint{Phase: PhaseExecute, Best: best})
}

// ResumeAdaptive continues an interrupted adaptive run from its checkpoint
// over an equivalent environment (same workload, fault profile, and
// options). The in-flight executor is rebuilt and replayed to the
// checkpointed snapshot; at zero fault rate the resumed run finishes exactly
// as the uninterrupted one would have. The pilot is not re-run, so
// Result.Pilot is nil on resumed results.
func ResumeAdaptive(env *Env, req Requirement, opts Options, ck *Checkpoint) (*Result, error) {
	return ResumeAdaptiveCtx(context.Background(), env, req, opts, ck)
}

// ResumeAdaptiveCtx is ResumeAdaptive under a context; a resumed run can
// itself be interrupted and resumed again.
func ResumeAdaptiveCtx(ctx context.Context, env *Env, req Requirement, opts Options, ck *Checkpoint) (*Result, error) {
	opts.defaults()
	if ck == nil || ck.Inputs == nil {
		return nil, fmt.Errorf("optimizer: nil or incomplete checkpoint")
	}
	if env.NewExecutor == nil || env.Rates == nil || len(env.Thetas) == 0 {
		return nil, fmt.Errorf("optimizer: incomplete environment")
	}
	ck.Inputs.Workers = opts.ChooseWorkers
	res := &Result{
		Decisions:      append([]Decision(nil), ck.Decisions...),
		CheckpointErrs: append([]error(nil), ck.CheckpointErrs...),
		TotalTime:      ck.TotalTime,
		Inputs:         ck.Inputs,
	}
	return env.adaptiveLoop(ctx, res, req, opts, ck)
}

// adaptiveLoop drives the post-pilot protocol from a (possibly replayed)
// checkpoint. res must carry the estimates in res.Inputs and the billed time
// so far; ck positions the loop (phase, plan, switch count, in-flight
// executor snapshot). The stop predicates are pure functions of the
// execution state, so re-entering a phase with a replayed executor continues
// exactly where the interrupted run left off.
func (env *Env) adaptiveLoop(ctx context.Context, res *Result, req Requirement, opts Options, ck *Checkpoint) (*Result, error) {
	plans := Enumerate(env.Thetas)
	in := res.Inputs
	best := ck.Best
	switches := ck.Switches
	om := obs.NewOptMetrics(env.Metrics)
	phaseStart := time.Now()

	exec, err := env.NewExecutor(best.Plan)
	if err != nil {
		return res, fmt.Errorf("optimizer: building %s: %w", best.Plan, err)
	}
	if ck.Exec.Steps > 0 {
		primeShards(exec, ck.ShardDocs)
		if err := join.Replay(exec, ck.Exec); err != nil {
			return res, fmt.Errorf("optimizer: resuming %s: %w", best.Plan, err)
		}
	}

	interrupted := func(err error) bool {
		return err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())
	}
	persist := func(c *Checkpoint) {
		if opts.Persist != nil {
			opts.Persist(c)
		}
	}
	checkpointed := func(phase Phase, target [2]int, ext int, prev [2]int) *Checkpoint {
		return &Checkpoint{
			Phase:          phase,
			Best:           best,
			Inputs:         in,
			Decisions:      append([]Decision(nil), res.Decisions...),
			CheckpointErrs: append([]error(nil), res.CheckpointErrs...),
			Switches:       switches,
			TotalTime:      res.TotalTime,
			Exec:           exec.State().Snapshot(),
			ShardDocs:      shardProgress(exec),
			Target:         target,
			Ext:            ext,
			Prev:           prev,
		}
	}

	// finish seals the run through finishFrom, publishing the execute- and
	// finish-phase timings around it.
	finish := func(target [2]int, ext int, prev [2]int, inRun bool) (*Result, error) {
		om.Phase("execute", exec.State().Time, time.Since(phaseStart).Seconds())
		phaseStart = time.Now()
		t0 := exec.State().Time
		r, ferr := env.finishFrom(ctx, res, exec, best, req, target, ext, prev, inRun, checkpointed, persist)
		om.Phase("finish", exec.State().Time-t0, time.Since(phaseStart).Seconds())
		return r, ferr
	}

	persist(checkpointed(ck.Phase, ck.Target, ck.Ext, ck.Prev))
	if ck.Phase == PhaseFinish {
		return finish(ck.Target, ck.Ext, ck.Prev, true)
	}
	committed := ck.Phase == PhaseCommitted
	for {
		if committed {
			_, err := join.RunCtx(ctx, exec, func(s *join.State) bool {
				return effortReached(best.Plan, s, best.Effort)
			})
			if interrupted(err) {
				res.Checkpoint = checkpointed(PhaseCommitted, [2]int{}, 0, [2]int{})
				return res, err
			}
			if err != nil {
				return res, err
			}
			return finish(best.Effort, 0, [2]int{}, false)
		}
		// Run toward the re-optimization checkpoint.
		st, err := join.RunCtx(ctx, exec, func(s *join.State) bool {
			if effortReached(best.Plan, s, best.Effort) {
				return true
			}
			return effortFraction(best.Plan, s, best.Effort) >= opts.RecheckFraction && switches < opts.MaxSwitches
		})
		if interrupted(err) {
			res.Checkpoint = checkpointed(PhaseExecute, [2]int{}, 0, [2]int{})
			return res, err
		}
		if err != nil {
			return res, err
		}
		if effortReached(best.Plan, st, best.Effort) {
			return finish(best.Effort, 0, [2]int{}, false)
		}
		// Checkpoint: re-estimate when the current plan samples by
		// scanning (unbiased window); otherwise keep the pilot estimates.
		if scanLike(best.Plan) {
			if in2, err := env.estimateInputs(st, best.Plan.Theta[0]); err == nil {
				in2.Workers = opts.ChooseWorkers
				in = in2
				res.Inputs = in
			}
		}
		// The billed time at this decision point includes the in-flight
		// executor's work, whether we keep going (finish bills the full
		// state) or switch (billed below) — keeping decision timestamps
		// monotone and consistent with the switch path.
		now := res.TotalTime + st.Time
		om.Checkpoint()
		env.emit(now, obs.KindCheckpoint, map[string]any{"plan": best.Plan.String(), "switches": switches})
		nb, _, err := Choose(plans, in, req)
		if err != nil || nb.Plan == best.Plan {
			// No better option (or no feasible plan under the sharpened
			// estimates): finish the current execution.
			if err != nil {
				res.CheckpointErrs = append(res.CheckpointErrs,
					fmt.Errorf("optimizer: checkpoint at t=%.0f: %w", now, err))
				om.CheckpointErr()
				env.emit(now, obs.KindCheckpointError, map[string]any{"err": err.Error()})
			} else {
				best = nb
				res.Decisions = append(res.Decisions, Decision{AtTime: now, Chosen: nb})
				om.Decision(false)
				env.emit(now, obs.KindPlanChosen, map[string]any{
					"plan": best.Plan.String(), "effort1": best.Effort[0], "effort2": best.Effort[1], "predicted_time": best.Time})
			}
			committed = true
			persist(checkpointed(PhaseCommitted, [2]int{}, 0, [2]int{}))
			continue
		}
		// Switch: bill the abandoned work and restart with the new plan.
		res.TotalTime += st.Time
		switches++
		om.Decision(true)
		env.emit(res.TotalTime, obs.KindPlanSwitch, map[string]any{
			"from": best.Plan.String(), "to": nb.Plan.String(), "switches": switches})
		best = nb
		res.Decisions = append(res.Decisions, Decision{AtTime: res.TotalTime, Chosen: best, Switched: true})
		if exec, err = env.NewExecutor(best.Plan); err != nil {
			return res, fmt.Errorf("optimizer: building %s: %w", best.Plan, err)
		}
		persist(checkpointed(PhaseExecute, [2]int{}, 0, [2]int{}))
	}
}

// shardProgress captures the per-shard resolution counts of a sharded
// execution's frontend — nil for unsharded executions, whose frontend (a
// single engine or none) has no Progress.
func shardProgress(exec join.Executor) []int {
	if p, ok := exec.State().Pipeline.(interface{ Progress() []int }); ok {
		return p.Progress()
	}
	return nil
}

// primeShards installs a checkpoint's per-shard progress as the rebuilt
// executor's resume floor before replay. A no-op for unsharded executions
// (and for mismatched shard counts, which the frontend itself rejects):
// replay is correct without priming, just re-speculates work already done.
func primeShards(exec join.Executor, progress []int) {
	if len(progress) == 0 {
		return
	}
	if p, ok := exec.State().Pipeline.(interface{ Prime([]int) }); ok {
		p.Prime(progress)
	}
}

// PilotEstimate runs the estimation pilot — an IDJN scan window at the most
// permissive knob setting, whose sampling matches the estimator's
// assumptions — and returns the inferred optimizer inputs together with the
// pilot's execution state (its cost must be billed by the caller).
func PilotEstimate(env *Env, opts Options) (*Inputs, *join.State, error) {
	opts.defaults()
	if env.NewExecutor == nil || env.Rates == nil || len(env.Thetas) == 0 {
		return nil, nil, fmt.Errorf("optimizer: incomplete environment")
	}
	pilotTheta := env.Thetas[0]
	pilotPlan := PlanSpec{JN: IDJN, Theta: [2]float64{pilotTheta, pilotTheta}, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	pilot, err := env.NewExecutor(pilotPlan)
	if err != nil {
		return nil, nil, fmt.Errorf("optimizer: building pilot: %w", err)
	}
	pilotDocs := int(opts.PilotFraction * float64(env.NumDocs[0]))
	if pilotDocs < 100 {
		pilotDocs = 100
	}
	var pilotState *join.State
	var in *Inputs
	// Extend the pilot window until the cross-validated estimates
	// stabilize (or the extension budget runs out) — §VI's robustness
	// checking.
	for ext := 0; ; ext++ {
		target := pilotDocs
		pilotState, err = join.Run(pilot, func(s *join.State) bool {
			return s.DocsProcessed[0] >= target && s.DocsProcessed[1] >= target
		})
		if err != nil {
			return nil, nil, fmt.Errorf("optimizer: pilot run: %w", err)
		}
		in, err = env.estimateInputs(pilotState, pilotTheta)
		if err != nil {
			return nil, nil, fmt.Errorf("optimizer: pilot estimation: %w", err)
		}
		if ext >= 3 || pilotDocs >= env.NumDocs[0] {
			break
		}
		stable := true
		for side := 0; side < 2; side++ {
			tp, fp := env.Rates(side, pilotTheta)
			obs := estimate.FromState(pilotState, side, effectiveDocs(pilotState, side, env.NumDocs[side]), tp, fp, env.BadInGoodPrior)
			div, cvErr := estimate.CrossValidate(obs)
			if cvErr != nil || div > opts.StableDivergence {
				stable = false
				break
			}
		}
		if stable {
			break
		}
		pilotDocs += pilotDocs / 2
		if pilotDocs > env.NumDocs[0] {
			pilotDocs = env.NumDocs[0]
		}
	}
	return in, pilotState, nil
}

// finishFrom drives an execution past its planned effort until the
// label-free achieved-quality estimate meets τg — the paper's stopping
// condition "estimated # good tuples in Rj ≥ τg" — extending the effort
// target geometrically (up to a bounded number of extensions) when the
// planned effort proves optimistic, then seals the result. When inRun is
// set, the loop resumes mid-iteration inside the interrupted run with the
// checkpointed target, extension round, and stall snapshot.
func (env *Env) finishFrom(ctx context.Context, res *Result, exec join.Executor, best Eval, req Requirement,
	target [2]int, ext int, prev [2]int, inRun bool,
	checkpointed func(Phase, [2]int, int, [2]int) *Checkpoint, persist func(*Checkpoint)) (*Result, error) {
	for ; ext < 5; ext++ {
		if !inRun {
			good, bad := env.achieved(exec.State(), best.Plan)
			if good >= float64(req.TauG) {
				break
			}
			if bad > float64(req.TauB) {
				// The algorithms' other stopping condition (Figures 3, 5, 7):
				// once the estimated bad output exceeds τb, continuing cannot
				// satisfy the requirement — return what was produced.
				break
			}
			// Extend the effort target by half and keep going; the run
			// returns immediately once the executor is exhausted.
			for side := 0; side < 2; side++ {
				if target[side] > 0 {
					target[side] += (target[side] + 1) / 2
				}
			}
			prev = progressSnapshot(best.Plan, exec.State())
			persist(checkpointed(PhaseFinish, target, ext, prev))
		}
		inRun = false
		if _, err := join.RunCtx(ctx, exec, func(s *join.State) bool {
			return effortReached(best.Plan, s, target)
		}); err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				res.Checkpoint = checkpointed(PhaseFinish, target, ext, prev)
			}
			return res, err
		}
		if progressSnapshot(best.Plan, exec.State()) == prev {
			break // exhausted: no further progress possible
		}
	}
	res.Final = exec.State()
	res.TotalTime += res.Final.Time
	return res, nil
}

// achieved estimates the good/bad composition of the current output without
// labels, via the mixture posteriors of freshly fitted estimates.
func (env *Env) achieved(st *join.State, plan PlanSpec) (good, bad float64) {
	var obs [2]estimate.Observation
	var ests [2]*estimate.Estimated
	for side := 0; side < 2; side++ {
		tp, fp := env.Rates(side, plan.Theta[side])
		obs[side] = estimate.FromState(st, side, effectiveDocs(st, side, env.NumDocs[side]), tp, fp, env.BadInGoodPrior)
		est, err := estimate.Estimate(obs[side])
		if err != nil {
			// Too little data for a fit: fall back to the raw pair count
			// scaled by the training precision proxy.
			return fallbackSplit(float64(st.GoodPairs+st.BadPairs), tp, fp)
		}
		ests[side] = est
	}
	return estimate.PairSplit(obs[0], obs[1], ests[0], ests[1])
}

// fallbackSplit apportions total output pairs by the training precision
// proxy tp/(tp+fp). The zero-rate case (tp = fp = 0) is guarded: the ratio
// would be NaN, which poisons the τg stopping comparison in finish (NaN ≥ τg
// is always false, so the run would never stop on quality).
func fallbackSplit(total, tp, fp float64) (good, bad float64) {
	prec := 0.0
	if tp+fp > 0 {
		prec = tp / (tp + fp)
	}
	return total * prec, total * (1 - prec)
}

// progressSnapshot summarizes an execution's effort for stall detection.
func progressSnapshot(plan PlanSpec, st *join.State) [2]int {
	return [2]int{effortUnit(plan, st, 0), effortUnit(plan, st, 1)}
}

// effectiveDocs corrects a side's nominal database size for observed
// document loss. Documents that exhausted their retries were skipped, so the
// execution effectively samples from a database shrunk by the loss rate —
// scaling estimates to the nominal size would claim coverage the degraded
// run never had, inflating |Dg| and the achieved-quality numbers by exactly
// the loss rate. At zero loss this is the identity.
func effectiveDocs(st *join.State, side, numDocs int) int {
	failed := st.DocsFailed[side]
	if failed == 0 {
		return numDocs
	}
	seen := st.DocsProcessed[side] + failed
	eff := int(float64(numDocs)*(1-float64(failed)/float64(seen)) + 0.5)
	// The processed documents are certainly in the reachable population.
	if eff < st.DocsProcessed[side] {
		eff = st.DocsProcessed[side]
	}
	if eff < 1 {
		eff = 1
	}
	return eff
}

// estimateInputs runs the MLE estimator on both sides of a scan-sampled
// state and assembles the optimizer inputs for every knob setting.
func (env *Env) estimateInputs(st *join.State, obsTheta float64) (*Inputs, error) {
	in := &Inputs{
		Thetas:      env.Thetas,
		Ov:          model.Overlaps{},
		Costs:       env.Costs,
		CasualHits:  env.CasualHits,
		Mentioned:   env.Mentioned,
		SeedCount:   env.SeedCount,
		ExecWorkers: env.ExecWorkers,
		Shards:      env.Shards,
	}
	if env.CacheHitRate != nil {
		in.CacheHitRate = [2]float64{env.CacheHitRate(0), env.CacheHitRate(1)}
	}
	var ests [2]*estimate.Estimated
	var obs [2]estimate.Observation
	for side := 0; side < 2; side++ {
		tp, fp := env.Rates(side, obsTheta)
		obs[side] = estimate.FromState(st, side, effectiveDocs(st, side, env.NumDocs[side]), tp, fp, env.BadInGoodPrior)
		est, err := estimate.Estimate(obs[side])
		if err != nil {
			return nil, fmt.Errorf("side %d: %w", side+1, err)
		}
		ests[side] = est
		for _, theta := range env.Thetas {
			p := *est.Params // copy; per-θ rates below
			p.TP, p.FP = env.Rates(side, theta)
			p.AQG = env.AQG[side]
			p.QPrec = env.QPrec[side]
			p.TopK = env.TopK[side]
			p.Ctp, p.Cfp = env.Ctp[side], env.Cfp[side]
			in.P[side] = append(in.P[side], &p)
		}
	}
	in.Ov = estimate.EstimateOverlaps(obs[0].ValueCounts, obs[1].ValueCounts, ests[0], ests[1])
	return in, nil
}

// effortUnit returns the per-side progress of a running execution in the
// units the optimizer planned in.
func effortUnit(plan PlanSpec, st *join.State, side int) int {
	switch plan.JN {
	case ZGJN:
		return st.Queries[side]
	case OIJN:
		if side != plan.OuterIdx {
			return 0
		}
		if plan.X[side] == retrieval.AQG {
			return st.Queries[side]
		}
		return st.DocsRetrieved[side]
	default:
		if plan.X[side] == retrieval.AQG {
			return st.Queries[side]
		}
		return st.DocsRetrieved[side]
	}
}

// effortReached reports whether the execution has spent the planned effort
// (or is exhausted relative to it).
func effortReached(plan PlanSpec, st *join.State, effort [2]int) bool {
	for side := 0; side < 2; side++ {
		if effort[side] > 0 && effortUnit(plan, st, side) < effort[side] {
			return false
		}
	}
	return true
}

// effortFraction is the progress toward the planned effort, in [0, 1].
func effortFraction(plan PlanSpec, st *join.State, effort [2]int) float64 {
	frac := 1.0
	seen := false
	for side := 0; side < 2; side++ {
		if effort[side] <= 0 {
			continue
		}
		seen = true
		f := float64(effortUnit(plan, st, side)) / float64(effort[side])
		if f < frac {
			frac = f
		}
	}
	if !seen {
		return 1
	}
	return frac
}

// scanLike reports whether a plan's sampling window is unbiased enough for
// re-estimation (scan or filtered-scan driven).
func scanLike(plan PlanSpec) bool {
	switch plan.JN {
	case IDJN:
		return plan.X[0] != retrieval.AQG && plan.X[1] != retrieval.AQG
	case OIJN:
		return plan.X[plan.OuterIdx] != retrieval.AQG
	default:
		return false
	}
}
