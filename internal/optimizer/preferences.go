package optimizer

import (
	"fmt"
	"math"

	"joinopt/internal/model"
	"joinopt/internal/retrieval"
)

// Alternative user preference models (§III-C): the paper's quality
// requirement is the low-level (τg, τb) pair, and it notes that other cost
// functions — minimum precision at top-k, minimum recall at the end of
// execution, or maximizing quality within a time budget — "can be mapped to
// the (somewhat lower level) model". This file implements those mappings.

// Preference converts a high-level user preference into the low-level
// requirement against concrete plan-space inputs (the mapping may need
// database statistics, e.g. the achievable good-tuple total for recall).
type Preference interface {
	// Requirement resolves the preference to a (τg, τb) pair.
	Requirement(in *Inputs) (Requirement, error)
}

// MinPrecision asks for at least Good good tuples with output precision at
// least P: τb = Good·(1−P)/P.
type MinPrecision struct {
	Good int
	P    float64
}

// Requirement implements Preference.
func (m MinPrecision) Requirement(*Inputs) (Requirement, error) {
	if m.Good <= 0 || m.P <= 0 || m.P > 1 {
		return Requirement{}, fmt.Errorf("optimizer: invalid precision preference good=%d p=%v", m.Good, m.P)
	}
	tauB := int(math.Floor(float64(m.Good) * (1 - m.P) / m.P))
	return Requirement{TauG: m.Good, TauB: tauB}, nil
}

// MinRecall asks for at least fraction Recall of the achievable good join
// tuples, with bad output bounded by BadPerGood × τg (default 10). The
// achievable total is the model's full-effort estimate of |Tgood⋈| under
// the most permissive knob setting with full scans — the paper's "minimum
// recall at the end of execution".
type MinRecall struct {
	Recall     float64
	BadPerGood float64
}

// Requirement implements Preference.
func (m MinRecall) Requirement(in *Inputs) (Requirement, error) {
	if m.Recall <= 0 || m.Recall > 1 {
		return Requirement{}, fmt.Errorf("optimizer: invalid recall %v", m.Recall)
	}
	total, err := AchievableGood(in)
	if err != nil {
		return Requirement{}, err
	}
	tauG := int(math.Ceil(m.Recall * total))
	if tauG < 1 {
		tauG = 1
	}
	bpg := m.BadPerGood
	if bpg <= 0 {
		bpg = 10
	}
	return Requirement{TauG: tauG, TauB: int(math.Ceil(bpg * float64(tauG)))}, nil
}

// AchievableGood estimates the good-tuple total a full double scan yields
// under the most permissive knob setting — the denominator of recall-style
// preferences.
func AchievableGood(in *Inputs) (float64, error) {
	if len(in.Thetas) == 0 {
		return 0, fmt.Errorf("optimizer: no knob settings")
	}
	theta := in.Thetas[0]
	for _, t := range in.Thetas[1:] {
		if t < theta {
			theta = t
		}
	}
	p1, err := in.params(0, theta)
	if err != nil {
		return 0, err
	}
	p2, err := in.params(1, theta)
	if err != nil {
		return 0, err
	}
	m := &model.IDJNModel{P1: p1, P2: p2, X1: retrieval.SC, X2: retrieval.SC, Ov: in.Ov}
	q, err := m.Estimate(p1.D, p2.D)
	if err != nil {
		return 0, err
	}
	return q.Good, nil
}

// ChoosePreferred resolves a preference and picks the fastest plan meeting
// the derived requirement.
func ChoosePreferred(plans []PlanSpec, in *Inputs, pref Preference) (Eval, Requirement, error) {
	req, err := pref.Requirement(in)
	if err != nil {
		return Eval{}, Requirement{}, err
	}
	best, _, err := Choose(plans, in, req)
	return best, req, err
}

// ChooseWithinBudget implements the paper's time-budget preference:
// maximize the predicted good output subject to a hard execution-time
// budget, discarding operating points whose bad output exceeds
// maxBadPerGood × good (≤ 0 disables the ratio constraint). For every plan
// it finds the largest effort whose predicted time fits the budget (time is
// monotone in effort) and scores the quality there.
func ChooseWithinBudget(plans []PlanSpec, in *Inputs, budget, maxBadPerGood float64) (Eval, error) {
	if budget <= 0 {
		return Eval{}, fmt.Errorf("optimizer: time budget must be positive")
	}
	best := Eval{}
	found := false
	for _, plan := range plans {
		fns, _, err := in.memoFns(plan, 1)
		if err != nil {
			return Eval{}, err
		}
		if fns == nil {
			continue // degenerate plan (no capacity / stalled zig-zag)
		}
		// Largest effort within budget.
		tMax, err := fns.timeAt(fns.max)
		if err != nil {
			return Eval{}, err
		}
		effort := fns.max
		if tMax > budget {
			lo, hi := 1, fns.max
			for lo < hi {
				mid := (lo + hi + 1) / 2
				tm, err := fns.timeAt(mid)
				if err != nil {
					return Eval{}, err
				}
				if tm <= budget {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			effort = lo
			if tm, err := fns.timeAt(effort); err != nil || tm > budget {
				continue // even the smallest effort overshoots
			}
		}
		q, err := fns.quality(effort)
		if err != nil {
			return Eval{}, err
		}
		if maxBadPerGood > 0 && q.Good > 0 && q.Bad > maxBadPerGood*q.Good {
			continue
		}
		if q.Good > best.Quality.Good {
			tm, err := fns.timeAt(effort)
			if err != nil {
				return Eval{}, err
			}
			best = Eval{Plan: plan, Feasible: true, Effort: fns.effortPair(effort), Quality: q, Time: tm}
			found = true
		}
	}
	if !found {
		return Eval{}, fmt.Errorf("optimizer: no plan fits time budget %.0f", budget)
	}
	return best, nil
}
