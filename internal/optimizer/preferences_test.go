package optimizer_test

import (
	"testing"

	"joinopt/internal/optimizer"
)

func TestMinPrecisionMapping(t *testing.T) {
	req, err := optimizer.MinPrecision{Good: 50, P: 0.5}.Requirement(nil)
	if err != nil {
		t.Fatal(err)
	}
	if req.TauG != 50 || req.TauB != 50 {
		t.Errorf("precision 0.5 → %+v, want τg=50 τb=50", req)
	}
	req, err = optimizer.MinPrecision{Good: 30, P: 0.75}.Requirement(nil)
	if err != nil {
		t.Fatal(err)
	}
	if req.TauB != 10 {
		t.Errorf("precision 0.75 → τb=%d, want 10", req.TauB)
	}
	if _, err := (optimizer.MinPrecision{Good: 0, P: 0.5}).Requirement(nil); err == nil {
		t.Error("expected error for zero good target")
	}
	if _, err := (optimizer.MinPrecision{Good: 5, P: 1.5}).Requirement(nil); err == nil {
		t.Error("expected error for precision > 1")
	}
}

func TestMinRecallMapping(t *testing.T) {
	_, in := testSetup(t)
	total, err := optimizer.AchievableGood(in)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("achievable good %v", total)
	}
	req, err := optimizer.MinRecall{Recall: 0.25}.Requirement(in)
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.25*total + 0.999)
	if req.TauG < want-1 || req.TauG > want+1 {
		t.Errorf("recall 0.25 of %.0f → τg=%d", total, req.TauG)
	}
	if req.TauB != 10*req.TauG {
		t.Errorf("default bad budget τb=%d, want 10·τg", req.TauB)
	}
	if _, err := (optimizer.MinRecall{Recall: 1.5}).Requirement(in); err == nil {
		t.Error("expected error for recall > 1")
	}
}

func TestChoosePreferredEndToEnd(t *testing.T) {
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)
	best, req, err := optimizer.ChoosePreferred(plans, in, optimizer.MinPrecision{Good: 10, P: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("no feasible plan for a lax precision preference")
	}
	if req.TauG != 10 || req.TauB != 40 {
		t.Errorf("derived requirement %+v", req)
	}
	if best.Quality.Good < 10 {
		t.Errorf("chosen plan predicts %v good", best.Quality.Good)
	}
}

func TestChooseWithinBudget(t *testing.T) {
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)

	small, err := optimizer.ChooseWithinBudget(plans, in, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	large, err := optimizer.ChooseWithinBudget(plans, in, 20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.Time > 500 || large.Time > 20000 {
		t.Errorf("budgets violated: %.0f/500, %.0f/20000", small.Time, large.Time)
	}
	if large.Quality.Good <= small.Quality.Good {
		t.Errorf("bigger budget should buy more good output: %.0f vs %.0f",
			large.Quality.Good, small.Quality.Good)
	}
	// The precision constraint prunes high-fp operating points.
	strict, err := optimizer.ChooseWithinBudget(plans, in, 20000, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Quality.Bad > 0.4*strict.Quality.Good {
		t.Errorf("ratio constraint violated: %+v", strict.Quality)
	}
	if _, err := optimizer.ChooseWithinBudget(plans, in, -1, 0); err == nil {
		t.Error("expected error for non-positive budget")
	}
}

func TestChooseWithinBudgetConsistencyWithChoose(t *testing.T) {
	// If a budget equals the time of the fastest plan meeting (τg, τb),
	// the budgeted choice at that budget must deliver at least τg good.
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)
	req := optimizer.Requirement{TauG: 32, TauB: 1 << 20}
	best, _, err := optimizer.Choose(plans, in, req)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := optimizer.ChooseWithinBudget(plans, in, best.Time, 0)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Quality.Good < float64(req.TauG) {
		t.Errorf("budget %.0f should afford %d good, got %.0f", best.Time, req.TauG, budgeted.Quality.Good)
	}
}
