package optimizer_test

import (
	"strings"
	"sync"
	"testing"

	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

var (
	once  sync.Once
	wl    *workload.Workload
	wlErr error
	inT   *optimizer.Inputs
)

var thetas = []float64{0.4, 0.8}

func testSetup(t *testing.T) (*workload.Workload, *optimizer.Inputs) {
	t.Helper()
	once.Do(func() {
		wl, wlErr = workload.HQJoinEX(workload.Params{NumDocs: 1500, Seed: 3})
		if wlErr != nil {
			return
		}
		inT, wlErr = wl.TrueInputs(thetas)
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl, inT
}

func TestEnumeratePlanSpace(t *testing.T) {
	plans := optimizer.Enumerate(thetas)
	// Per θ pair: 9 IDJN + 6 OIJN + 1 ZGJN = 16; 4 θ pairs = 64.
	if len(plans) != 64 {
		t.Fatalf("plan space size %d, want 64", len(plans))
	}
	counts := map[optimizer.Algorithm]int{}
	seen := map[string]bool{}
	for _, p := range plans {
		counts[p.JN]++
		if seen[p.String()] {
			t.Fatalf("duplicate plan %s", p)
		}
		seen[p.String()] = true
	}
	if counts[optimizer.IDJN] != 36 || counts[optimizer.OIJN] != 24 || counts[optimizer.ZGJN] != 4 {
		t.Errorf("algorithm counts %v", counts)
	}
}

func TestPlanString(t *testing.T) {
	p := optimizer.PlanSpec{JN: optimizer.OIJN, Theta: [2]float64{0.8, 0.4}, X: [2]retrieval.Kind{retrieval.AQG, ""}, OuterIdx: 0}
	if !strings.Contains(p.String(), "OIJN") || !strings.Contains(p.String(), "outer=R1/AQG") {
		t.Errorf("plan string %q", p)
	}
}

func TestEvaluateEffortGrowsWithTauG(t *testing.T) {
	_, in := testSetup(t)
	plan := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4}, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	prevEffort := 0
	for _, tauG := range []int{4, 32, 128} {
		ev, err := optimizer.Evaluate(plan, in, optimizer.Requirement{TauG: tauG, TauB: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if !ev.Feasible {
			t.Fatalf("τg=%d should be feasible for a full scan: %s", tauG, ev.Reason)
		}
		if ev.Effort[0] <= prevEffort {
			t.Errorf("effort must grow with τg: %d after %d", ev.Effort[0], prevEffort)
		}
		prevEffort = ev.Effort[0]
		if ev.Quality.Good < float64(tauG) {
			t.Errorf("quality at chosen effort %.0f below τg %d", ev.Quality.Good, tauG)
		}
	}
}

func TestEvaluateInfeasibleTauB(t *testing.T) {
	_, in := testSetup(t)
	plan := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4}, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	ev, err := optimizer.Evaluate(plan, in, optimizer.Requirement{TauG: 100, TauB: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Feasible {
		t.Error("τb=0 at θ=0.4 must be infeasible (fp > 0)")
	}
	if ev.Reason == "" {
		t.Error("infeasible eval should carry a reason")
	}
}

func TestEvaluateUnknownTheta(t *testing.T) {
	_, in := testSetup(t)
	plan := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.5, 0.4}, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	if _, err := optimizer.Evaluate(plan, in, optimizer.Requirement{TauG: 1, TauB: 1}); err == nil {
		t.Error("expected error for unknown θ")
	}
}

func TestChoosePicksFastestFeasible(t *testing.T) {
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)
	req := optimizer.Requirement{TauG: 16, TauB: 160}
	best, evals, err := optimizer.Choose(plans, in, req)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("chosen plan not feasible")
	}
	for _, ev := range evals {
		if ev.Feasible && ev.Time < best.Time {
			t.Errorf("plan %s (%.0f) faster than chosen %s (%.0f)", ev.Plan, ev.Time, best.Plan, best.Time)
		}
	}
	if len(evals) != len(plans) {
		t.Errorf("expected an evaluation per plan: %d vs %d", len(evals), len(plans))
	}
}

func TestChooseProgressionAcrossRequirements(t *testing.T) {
	// The paper's Table II pattern: query-based plans win small requirements;
	// scan-based IDJN takes over for the largest ones; ZGJN is never chosen.
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)
	small, _, err := optimizer.Choose(plans, in, optimizer.Requirement{TauG: 2, TauB: 30})
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := optimizer.Choose(plans, in, optimizer.Requirement{TauG: 160, TauB: 1600})
	if err != nil {
		t.Fatal(err)
	}
	if small.Time >= large.Time {
		t.Errorf("small requirement (%.0f) should be cheaper than large (%.0f)", small.Time, large.Time)
	}
	if small.Plan.JN == optimizer.ZGJN || large.Plan.JN == optimizer.ZGJN {
		t.Errorf("ZGJN chosen: small=%s large=%s", small.Plan, large.Plan)
	}
	// The large requirement needs broad coverage; a plan restricted to
	// query reach cannot deliver 160 good pairs here, so a scan side must
	// appear.
	usesScan := false
	for side := 0; side < 2; side++ {
		if large.Plan.X[side] == retrieval.SC || large.Plan.X[side] == retrieval.FS {
			usesScan = true
		}
	}
	if large.Plan.JN == optimizer.IDJN && !usesScan {
		t.Errorf("large requirement chose %s without scan coverage", large.Plan)
	}
}

func TestChooseNoFeasiblePlan(t *testing.T) {
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)
	_, evals, err := optimizer.Choose(plans, in, optimizer.Requirement{TauG: 1 << 20, TauB: 1 << 30})
	if err == nil {
		t.Fatal("expected no-feasible-plan error")
	}
	for _, ev := range evals {
		if ev.Feasible {
			t.Fatalf("plan %s claims feasibility for an impossible τg", ev.Plan)
		}
	}
}

func TestZGJNEvaluationIsBounded(t *testing.T) {
	// ZGJN's reach is capped by the query cascade; for very large τg it
	// must report infeasibility rather than invent coverage.
	_, in := testSetup(t)
	plan := optimizer.PlanSpec{JN: optimizer.ZGJN, Theta: [2]float64{0.4, 0.4}}
	ev, err := optimizer.Evaluate(plan, in, optimizer.Requirement{TauG: 1 << 19, TauB: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Feasible {
		t.Error("ZGJN cannot deliver unbounded good pairs")
	}
}

func TestRunAdaptiveMeetsRequirement(t *testing.T) {
	w, _ := testSetup(t)
	env, err := w.NewEnv(thetas)
	if err != nil {
		t.Fatal(err)
	}
	req := optimizer.Requirement{TauG: 16, TauB: 400}
	res, err := optimizer.RunAdaptive(env, req, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pilot == nil || res.Final == nil {
		t.Fatal("missing pilot or final state")
	}
	if len(res.Decisions) == 0 {
		t.Fatal("no optimization decisions recorded")
	}
	if res.TotalTime <= res.Pilot.Time {
		t.Error("total time should include execution beyond the pilot")
	}
	if res.Final.GoodPairs < req.TauG {
		t.Errorf("adaptive run delivered %d good pairs, requirement was %d", res.Final.GoodPairs, req.TauG)
	}
}

func TestRunAdaptiveIncompleteEnv(t *testing.T) {
	if _, err := optimizer.RunAdaptive(&optimizer.Env{}, optimizer.Requirement{TauG: 1, TauB: 1}, optimizer.Options{}); err == nil {
		t.Error("expected error for incomplete environment")
	}
}

func TestRobustSigmaIsConservative(t *testing.T) {
	_, in := testSetup(t)
	plans := optimizer.Enumerate(thetas)
	req := optimizer.Requirement{TauG: 32, TauB: 320}
	point, _, err := optimizer.Choose(plans, in, req)
	if err != nil {
		t.Fatal(err)
	}
	robust := *in
	robust.RobustSigma = 2
	rb, evals, err := optimizer.Choose(plans, &robust, req)
	if err != nil {
		t.Fatal(err)
	}
	// The robust margin can only demand more effort (and hence time) from
	// the chosen plan, never less.
	if rb.Time < point.Time-1e-9 {
		t.Errorf("robust choice cheaper than point choice: %.0f vs %.0f", rb.Time, point.Time)
	}
	// Every robust-feasible plan must also be point-feasible.
	pointFeasible := map[string]bool{}
	_, pointEvals, err := optimizer.Choose(plans, in, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range pointEvals {
		if ev.Feasible {
			pointFeasible[ev.Plan.String()] = true
		}
	}
	for _, ev := range evals {
		if ev.Feasible && !pointFeasible[ev.Plan.String()] {
			t.Errorf("plan %s robust-feasible but not point-feasible", ev.Plan)
		}
	}
}

func TestRectangleRatiosNeverWorse(t *testing.T) {
	_, in := testSetup(t)
	plan := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4},
		X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	req := optimizer.Requirement{TauG: 32, TauB: 1 << 20}
	square, err := optimizer.Evaluate(plan, in, req)
	if err != nil {
		t.Fatal(err)
	}
	rect := *in
	rect.RectangleRatios = []float64{0.25, 0.5, 2, 4}
	best, err := optimizer.Evaluate(plan, &rect, req)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("rectangle evaluation lost feasibility")
	}
	// The square is in the candidate set implicitly, so exploring more
	// aspects can only match or improve the predicted time.
	if best.Time > square.Time+1e-9 {
		t.Errorf("rectangle exploration worsened time: %.1f vs %.1f", best.Time, square.Time)
	}
	// The square-traversal heuristic should be near-optimal on symmetric
	// databases (the paper's §VI argument: minimize the sum given the
	// product).
	if best.Time < 0.7*square.Time {
		t.Errorf("square heuristic far from optimal on symmetric sides: %.1f vs %.1f", best.Time, square.Time)
	}
}

func TestAsymmetricDatabasesShapeChoices(t *testing.T) {
	// With the same relation content buried in a 3x larger second
	// database, scanning side 2 costs triple for the same yield. The
	// models must price this in: (a) the rectangle exploration strictly
	// improves IDJN's square traversal, and (b) scanning the small side as
	// OIJN's outer beats scanning the big side.
	w, err := workload.HQJoinEX(workload.Params{NumDocs: 600, NumDocs2: 1800, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.TrueInputs(thetas)
	if err != nil {
		t.Fatal(err)
	}
	req := optimizer.Requirement{TauG: 24, TauB: 1 << 20}

	idjn := optimizer.PlanSpec{JN: optimizer.IDJN, Theta: [2]float64{0.4, 0.4},
		X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	square, err := optimizer.Evaluate(idjn, in, req)
	if err != nil {
		t.Fatal(err)
	}
	rectIn := *in
	rectIn.RectangleRatios = []float64{0.25, 0.5, 2, 4}
	rect, err := optimizer.Evaluate(idjn, &rectIn, req)
	if err != nil {
		t.Fatal(err)
	}
	if !square.Feasible || !rect.Feasible {
		t.Fatal("IDJN infeasible on asymmetric workload")
	}
	// The proportional baseline scans side 2 at 3x side 1's rate; an
	// aspect skew toward the small side should pay off.
	if rect.Time >= square.Time {
		t.Errorf("rectangle exploration should improve on asymmetric sides: %.0f vs %.0f",
			rect.Time, square.Time)
	}

	outerSmall := optimizer.PlanSpec{JN: optimizer.OIJN, Theta: [2]float64{0.4, 0.4},
		X: [2]retrieval.Kind{retrieval.SC, ""}, OuterIdx: 0}
	outerBig := optimizer.PlanSpec{JN: optimizer.OIJN, Theta: [2]float64{0.4, 0.4},
		X: [2]retrieval.Kind{"", retrieval.SC}, OuterIdx: 1}
	small, err := optimizer.Evaluate(outerSmall, in, req)
	if err != nil {
		t.Fatal(err)
	}
	big, err := optimizer.Evaluate(outerBig, in, req)
	if err != nil {
		t.Fatal(err)
	}
	if small.Feasible && big.Feasible && small.Time >= big.Time {
		t.Errorf("outer on the small database should be cheaper: %.0f vs %.0f", small.Time, big.Time)
	}
}
