package optimizer

import (
	"math"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/model"
	"joinopt/internal/retrieval"
)

func scState(docs, queries [2]int) *join.State {
	st := &join.State{}
	st.DocsRetrieved = docs
	st.Queries = queries
	return st
}

func TestEffortUnitPerPlanShape(t *testing.T) {
	st := scState([2]int{100, 50}, [2]int{7, 3})

	idjnSC := PlanSpec{JN: IDJN, X: [2]retrieval.Kind{retrieval.SC, retrieval.FS}}
	if effortUnit(idjnSC, st, 0) != 100 || effortUnit(idjnSC, st, 1) != 50 {
		t.Error("IDJN scan sides should report retrieved docs")
	}
	idjnAQG := PlanSpec{JN: IDJN, X: [2]retrieval.Kind{retrieval.AQG, retrieval.SC}}
	if effortUnit(idjnAQG, st, 0) != 7 {
		t.Error("IDJN AQG side should report queries")
	}
	oijn := PlanSpec{JN: OIJN, OuterIdx: 1, X: [2]retrieval.Kind{"", retrieval.SC}}
	if effortUnit(oijn, st, 1) != 50 {
		t.Error("OIJN outer side should report retrieved docs")
	}
	if effortUnit(oijn, st, 0) != 0 {
		t.Error("OIJN inner side has no planned effort unit")
	}
	zg := PlanSpec{JN: ZGJN}
	if effortUnit(zg, st, 0) != 7 || effortUnit(zg, st, 1) != 3 {
		t.Error("ZGJN sides should report queries")
	}
}

func TestEffortReachedAndFraction(t *testing.T) {
	plan := PlanSpec{JN: IDJN, X: [2]retrieval.Kind{retrieval.SC, retrieval.SC}}
	st := scState([2]int{50, 100}, [2]int{0, 0})
	effort := [2]int{100, 100}
	if effortReached(plan, st, effort) {
		t.Error("half effort should not be reached")
	}
	if f := effortFraction(plan, st, effort); f != 0.5 {
		t.Errorf("fraction %v, want 0.5 (minimum across sides)", f)
	}
	st = scState([2]int{120, 100}, [2]int{0, 0})
	if !effortReached(plan, st, effort) {
		t.Error("effort reached on both sides")
	}
	// Zero-effort sides are ignored.
	oijn := PlanSpec{JN: OIJN, OuterIdx: 0, X: [2]retrieval.Kind{retrieval.SC, ""}}
	st = scState([2]int{80, 0}, [2]int{0, 0})
	if !effortReached(oijn, st, [2]int{80, 0}) {
		t.Error("OIJN outer effort reached; inner side must be ignored")
	}
	if f := effortFraction(oijn, st, [2]int{160, 0}); f != 0.5 {
		t.Errorf("OIJN fraction %v", f)
	}
	// No planned effort at all: fraction saturates.
	if f := effortFraction(plan, st, [2]int{0, 0}); f != 1 {
		t.Errorf("empty effort fraction %v", f)
	}
}

func TestEffectiveDocs(t *testing.T) {
	st := &join.State{}
	st.DocsProcessed = [2]int{100, 50}
	if got := effectiveDocs(st, 0, 1000); got != 1000 {
		t.Errorf("zero loss must be the identity, got %d", got)
	}
	st.DocsFailed = [2]int{25, 0}
	// 25 of 125 seen documents were lost: the reachable population is 80%.
	if got := effectiveDocs(st, 0, 1000); got != 800 {
		t.Errorf("effectiveDocs = %d, want 800", got)
	}
	if got := effectiveDocs(st, 1, 1000); got != 1000 {
		t.Errorf("loss on side 0 must not touch side 1, got %d", got)
	}
	// Floors: never below the processed count, never below 1.
	heavy := &join.State{}
	heavy.DocsProcessed = [2]int{90, 0}
	heavy.DocsFailed = [2]int{910, 1}
	if got := effectiveDocs(heavy, 0, 100); got != 90 {
		t.Errorf("processed documents are reachable by construction, got %d", got)
	}
	if got := effectiveDocs(heavy, 1, 1); got != 1 {
		t.Errorf("total loss must still leave a population of 1, got %d", got)
	}
}

func TestScanLike(t *testing.T) {
	cases := []struct {
		plan PlanSpec
		want bool
	}{
		{PlanSpec{JN: IDJN, X: [2]retrieval.Kind{retrieval.SC, retrieval.FS}}, true},
		{PlanSpec{JN: IDJN, X: [2]retrieval.Kind{retrieval.SC, retrieval.AQG}}, false},
		{PlanSpec{JN: OIJN, OuterIdx: 0, X: [2]retrieval.Kind{retrieval.FS, ""}}, true},
		{PlanSpec{JN: OIJN, OuterIdx: 1, X: [2]retrieval.Kind{"", retrieval.AQG}}, false},
		{PlanSpec{JN: ZGJN}, false},
	}
	for _, c := range cases {
		if got := scanLike(c.plan); got != c.want {
			t.Errorf("scanLike(%s) = %v, want %v", c.plan, got, c.want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.PilotFraction != 0.10 || o.RecheckFraction != 0.25 || o.MaxSwitches != 2 {
		t.Errorf("defaults %+v", o)
	}
	custom := Options{PilotFraction: 0.2, RecheckFraction: 0.5, MaxSwitches: 1}
	custom.defaults()
	if custom.PilotFraction != 0.2 || custom.MaxSwitches != 1 {
		t.Errorf("custom options overridden: %+v", custom)
	}
}

// TestFallbackSplitZeroRates is the regression test for the achieved-quality
// NaN: when the estimator has too little data, achieved falls back to
// splitting the raw pair count by tp/(tp+fp) — with tp = fp = 0 (e.g. a knob
// setting whose training characterization found no extractions yet) that
// ratio was NaN, so the adaptive driver's τg stopping condition could never
// fire. The guarded split must stay finite.
func TestFallbackSplitZeroRates(t *testing.T) {
	good, bad := fallbackSplit(10, 0, 0)
	if math.IsNaN(good) || math.IsNaN(bad) {
		t.Fatalf("zero-rate fallback is NaN: good=%v bad=%v", good, bad)
	}
	if good != 0 || bad != 10 {
		t.Errorf("zero-rate split (%v, %v), want (0, 10): with no evidence of true positives all output counts as bad", good, bad)
	}
	// Normal cases are unchanged by the guard.
	if g, b := fallbackSplit(10, 0.5, 0.5); g != 5 || b != 5 {
		t.Errorf("balanced split (%v, %v)", g, b)
	}
	if g, b := fallbackSplit(8, 0.9, 0.1); math.Abs(g-7.2) > 1e-9 || math.Abs(b-0.8) > 1e-9 {
		t.Errorf("skewed split (%v, %v)", g, b)
	}
	if g, b := fallbackSplit(0, 0, 0); g != 0 || b != 0 {
		t.Errorf("empty output split (%v, %v)", g, b)
	}
}

func TestRobustQualityCollapse(t *testing.T) {
	// robustQuality uses LCB for good and UCB for bad.
	d := qualityDistForTest(100, 50, 25, 16)
	q := robustQuality(d, 2)
	if q.Good != 90 || q.Bad != 58 {
		t.Errorf("robust quality %+v", q)
	}
}

// qualityDistForTest builds a distributional estimate for robustQuality.
func qualityDistForTest(good, bad, varGood, varBad float64) model.QualityDist {
	return model.QualityDist{
		Quality: model.Quality{Good: good, Bad: bad},
		VarGood: varGood, VarBad: varBad,
	}
}
