package optimizer

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"joinopt/internal/model"
)

// Eval is the optimizer's assessment of one plan against a requirement.
type Eval struct {
	Plan     PlanSpec
	Feasible bool

	// Effort is the minimal per-side effort meeting the requirement:
	// documents for scans, queries for AQG and ZGJN, outer documents for
	// OIJN (Effort[1-OuterIdx] is zero — the inner side's work is implied).
	Effort [2]int

	// Quality is the predicted output composition at Effort (the robust
	// bounds when Inputs.RobustSigma is set).
	Quality model.Quality

	// Time is the predicted cost-model execution time at Effort.
	Time float64

	// Reason explains infeasibility.
	Reason string
}

// Evaluate finds the minimal effort at which plan meets req, per the
// models. The search exploits monotonicity: both good and bad output grow
// with effort, so the minimal effort reaching τg is found by binary search
// and the plan is feasible iff the bad count there is within τb.
//
// For IDJN the two sides advance proportionally — the square-traversal
// heuristic of §VI, minimizing the sum of documents processed given that
// their product drives the good-pair count.
//
// The plan closures and every quality/time point they produce are memoized
// on the Inputs (see memo.go), so repeated evaluations — across the binary
// search, the rectangle ratios, adaptive checkpoints, and requirement
// sweeps — do not recompute identical model state.
func Evaluate(plan PlanSpec, in *Inputs, req Requirement) (Eval, error) {
	fns, reason, err := in.memoFns(plan, 1)
	if err != nil {
		return Eval{}, err
	}
	best, err := evaluateFns(plan, in, req, fns, reason)
	if err != nil {
		return Eval{}, err
	}
	// Rectangle exploration for IDJN: try the skewed aspects and keep the
	// cheapest feasible evaluation.
	if plan.JN == IDJN && len(in.RectangleRatios) > 0 {
		for _, ratio := range in.RectangleRatios {
			if ratio == 1 || ratio <= 0 {
				continue
			}
			fns, reason, err := in.memoFns(plan, ratio)
			if err != nil {
				return Eval{}, err
			}
			ev, err := evaluateFns(plan, in, req, fns, reason)
			if err != nil {
				return Eval{}, err
			}
			if ev.Feasible && (!best.Feasible || ev.Time < best.Time) {
				best = ev
			}
		}
	}
	return best, nil
}

// evaluateFns runs the minimal-effort search against one set of plan
// closures.
func evaluateFns(plan PlanSpec, in *Inputs, req Requirement, fns *planFns, reason string) (Eval, error) {
	if fns == nil {
		return Eval{Plan: plan, Reason: reason}, nil
	}
	quality := fns.quality
	if fns.qualityRobust != nil {
		quality = fns.qualityRobust
	}
	e, q, feasible, err := searchMinEffort(fns.max, req.TauG, quality)
	if err != nil {
		return Eval{}, err
	}
	out := Eval{Plan: plan, Effort: fns.effortPair(e), Quality: q}
	if !feasible {
		out.Reason = fmt.Sprintf("max good %.0f < τg %d", q.Good, req.TauG)
		return out, nil
	}
	if q.Bad > float64(req.TauB) {
		out.Reason = fmt.Sprintf("bad %.0f > τb %d at required effort", q.Bad, req.TauB)
		return out, nil
	}
	out.Feasible = true
	out.Time, err = fns.timeAt(e)
	return out, err
}

// searchMinEffort binary-searches the smallest effort e in [1, max] with
// good(e) ≥ τg. It returns feasible=false when even max falls short. The
// returned quality is always the one measured at the returned effort, so
// Eval.Effort and Eval.Quality cannot disagree even when the quality
// function is not perfectly monotone.
func searchMinEffort(max int, tauG int, quality func(int) (model.Quality, error)) (int, model.Quality, bool, error) {
	qMax, err := quality(max)
	if err != nil {
		return 0, model.Quality{}, false, err
	}
	if qMax.Good < float64(tauG) {
		return max, qMax, false, nil
	}
	// Invariant: (eHi, qHi) is the smallest effort measured to reach τg.
	lo, hi := 1, max
	eHi, qHi := max, qMax
	for lo < hi {
		mid := (lo + hi) / 2
		q, err := quality(mid)
		if err != nil {
			return 0, model.Quality{}, false, err
		}
		if q.Good >= float64(tauG) {
			hi = mid
			eHi, qHi = mid, q
		} else {
			lo = mid + 1
		}
	}
	return eHi, qHi, true, nil
}

// robustQuality collapses a distributional estimate into the conservative
// point the feasibility checks consume: the z-sigma lower bound on good
// output and upper bound on bad output.
func robustQuality(d model.QualityDist, z float64) model.Quality {
	return model.Quality{Good: d.GoodLCB(z), Bad: d.BadUCB(z)}
}

// Choose evaluates every plan and returns the fastest feasible one plus all
// evaluations (for reporting). It returns an error when no plan is
// feasible.
//
// Evaluation runs on a bounded worker pool (Inputs.Workers; one worker per
// CPU by default, 1 forces the sequential path). The result is
// deterministic and identical to the sequential path for any worker count:
// plans are evaluated independently against read-only model state, and the
// reduction scans the evaluations in plan order keeping the strictly
// fastest feasible plan, so ties break toward the earlier plan exactly as
// a sequential scan would.
func Choose(plans []PlanSpec, in *Inputs, req Requirement) (Eval, []Eval, error) {
	workers := in.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plans) {
		workers = len(plans)
	}
	if workers <= 1 {
		return chooseSequential(plans, in, req)
	}
	evals := make([]Eval, len(plans))
	errs := make([]error, len(plans))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(plans) || failed.Load() {
					return
				}
				ev, err := Evaluate(plans[i], in, req)
				if err != nil {
					errs[i] = fmt.Errorf("optimizer: evaluating %s: %w", plans[i], err)
					failed.Store(true)
					return
				}
				evals[i] = ev
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		// Indices are handed out in order and every claimed index either
		// completes or records its error, so the lowest recorded error is
		// the one the sequential scan would have hit first.
		for _, err := range errs {
			if err != nil {
				return Eval{}, nil, err
			}
		}
	}
	return pickBest(evals, req)
}

// chooseSequential is the single-threaded reference path.
func chooseSequential(plans []PlanSpec, in *Inputs, req Requirement) (Eval, []Eval, error) {
	evals := make([]Eval, 0, len(plans))
	for _, plan := range plans {
		ev, err := Evaluate(plan, in, req)
		if err != nil {
			return Eval{}, nil, fmt.Errorf("optimizer: evaluating %s: %w", plan, err)
		}
		evals = append(evals, ev)
	}
	return pickBest(evals, req)
}

// pickBest reduces an evaluation list to the fastest feasible plan with the
// deterministic tie-break (lowest time, then plan order).
func pickBest(evals []Eval, req Requirement) (Eval, []Eval, error) {
	best := Eval{Time: math.Inf(1)}
	found := false
	for _, ev := range evals {
		if ev.Feasible && ev.Time < best.Time {
			best = ev
			found = true
		}
	}
	if !found {
		return Eval{}, evals, fmt.Errorf("optimizer: no feasible plan for τg=%d τb=%d", req.TauG, req.TauB)
	}
	return best, evals, nil
}
