package optimizer

import (
	"fmt"
	"math"

	"joinopt/internal/model"
)

// Eval is the optimizer's assessment of one plan against a requirement.
type Eval struct {
	Plan     PlanSpec
	Feasible bool

	// Effort is the minimal per-side effort meeting the requirement:
	// documents for scans, queries for AQG and ZGJN, outer documents for
	// OIJN (Effort[1-OuterIdx] is zero — the inner side's work is implied).
	Effort [2]int

	// Quality is the predicted output composition at Effort (the robust
	// bounds when Inputs.RobustSigma is set).
	Quality model.Quality

	// Time is the predicted cost-model execution time at Effort.
	Time float64

	// Reason explains infeasibility.
	Reason string
}

// Evaluate finds the minimal effort at which plan meets req, per the
// models. The search exploits monotonicity: both good and bad output grow
// with effort, so the minimal effort reaching τg is found by binary search
// and the plan is feasible iff the bad count there is within τb.
//
// For IDJN the two sides advance proportionally — the square-traversal
// heuristic of §VI, minimizing the sum of documents processed given that
// their product drives the good-pair count.
func Evaluate(plan PlanSpec, in *Inputs, req Requirement) (Eval, error) {
	best, err := evaluateFns(plan, in, req, func() (*planFns, string, error) {
		return planFuncs(plan, in)
	})
	if err != nil {
		return Eval{}, err
	}
	// Rectangle exploration for IDJN: try the skewed aspects and keep the
	// cheapest feasible evaluation.
	if plan.JN == IDJN && len(in.RectangleRatios) > 0 {
		for _, r := range in.RectangleRatios {
			ratio := r
			if ratio == 1 || ratio <= 0 {
				continue
			}
			ev, err := evaluateFns(plan, in, req, func() (*planFns, string, error) {
				return idjnFuncsRatio(plan, in, ratio)
			})
			if err != nil {
				return Eval{}, err
			}
			if ev.Feasible && (!best.Feasible || ev.Time < best.Time) {
				best = ev
			}
		}
	}
	return best, nil
}

// evaluateFns runs the minimal-effort search against one set of plan
// closures.
func evaluateFns(plan PlanSpec, in *Inputs, req Requirement, build func() (*planFns, string, error)) (Eval, error) {
	fns, reason, err := build()
	if err != nil {
		return Eval{}, err
	}
	if fns == nil {
		return Eval{Plan: plan, Reason: reason}, nil
	}
	quality := fns.quality
	if fns.qualityRobust != nil {
		quality = fns.qualityRobust
	}
	e, q, feasible, err := searchMinEffort(fns.max, req.TauG, quality)
	if err != nil {
		return Eval{}, err
	}
	out := Eval{Plan: plan, Effort: fns.effortPair(e), Quality: q}
	if !feasible {
		out.Reason = fmt.Sprintf("max good %.0f < τg %d", q.Good, req.TauG)
		return out, nil
	}
	if q.Bad > float64(req.TauB) {
		out.Reason = fmt.Sprintf("bad %.0f > τb %d at required effort", q.Bad, req.TauB)
		return out, nil
	}
	out.Feasible = true
	out.Time, err = fns.timeAt(e)
	return out, err
}

// searchMinEffort binary-searches the smallest effort e in [1, max] with
// good(e) ≥ τg. It returns feasible=false when even max falls short.
func searchMinEffort(max int, tauG int, quality func(int) (model.Quality, error)) (int, model.Quality, bool, error) {
	qMax, err := quality(max)
	if err != nil {
		return 0, model.Quality{}, false, err
	}
	if qMax.Good < float64(tauG) {
		return max, qMax, false, nil
	}
	lo, hi := 1, max
	qHi := qMax
	for lo < hi {
		mid := (lo + hi) / 2
		q, err := quality(mid)
		if err != nil {
			return 0, model.Quality{}, false, err
		}
		if q.Good >= float64(tauG) {
			hi = mid
			qHi = q
		} else {
			lo = mid + 1
		}
	}
	if lo == hi && hi == max {
		return max, qMax, true, nil
	}
	// Recompute at the boundary when the loop converged from below.
	q, err := quality(lo)
	if err != nil {
		return 0, model.Quality{}, false, err
	}
	if q.Good < float64(tauG) {
		q = qHi
	}
	return lo, q, true, nil
}

// robustQuality collapses a distributional estimate into the conservative
// point the feasibility checks consume: the z-sigma lower bound on good
// output and upper bound on bad output.
func robustQuality(d model.QualityDist, z float64) model.Quality {
	return model.Quality{Good: d.GoodLCB(z), Bad: d.BadUCB(z)}
}

// Choose evaluates every plan and returns the fastest feasible one plus all
// evaluations (for reporting). It returns an error when no plan is
// feasible.
func Choose(plans []PlanSpec, in *Inputs, req Requirement) (Eval, []Eval, error) {
	evals := make([]Eval, 0, len(plans))
	best := Eval{Time: math.Inf(1)}
	found := false
	for _, plan := range plans {
		ev, err := Evaluate(plan, in, req)
		if err != nil {
			return Eval{}, nil, fmt.Errorf("optimizer: evaluating %s: %w", plan, err)
		}
		evals = append(evals, ev)
		if ev.Feasible && ev.Time < best.Time {
			best = ev
			found = true
		}
	}
	if !found {
		return Eval{}, evals, fmt.Errorf("optimizer: no feasible plan for τg=%d τb=%d", req.TauG, req.TauB)
	}
	return best, evals, nil
}
