// Package pipeline implements the pipelined parallel execution engine
// behind the join executors: a bounded worker pool that speculatively runs
// the pure extraction function over announced upcoming documents, a
// reorder buffer that hands the results back to the single consumer
// goroutine in stream order, and a process-wide byte-bounded extraction
// cache shared across pilot runs, adaptive phases, and plans.
//
// Determinism is the design constraint everything here serves: only the
// side-effect-free extraction computation runs on workers. Every stateful
// operation — retrieval pulls, document fetches (and with them the seeded
// fault-injection streams), retries, cost-model accounting, trace emission,
// and every cache mutation — stays on the consumer goroutine in exactly the
// order the sequential path performs it. Output tuples, cost-model time,
// traces, and snapshots are therefore bit-identical for any worker count,
// including zero (the join package's golden-trace property test pins this).
package pipeline

import (
	"container/list"
	"sync"

	"joinopt/internal/relation"
)

// Key identifies one extraction result: a document of one database side
// processed by that side's IE system at a specific tuning θ. Distinct θ
// settings emit different tuple sets from the same document, so the knob is
// part of the identity.
type Key struct {
	Side  int
	DocID int
	Theta float64
}

// CacheStats is a point-in-time snapshot of a cache's accounting.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
	Entries   int
	// TierHits is the subset of Hits served by the second tier (entries not
	// resident in memory at lookup time — warmed lazily from disk).
	TierHits int64
}

// Tier is a second cache level behind the in-memory LRU — typically a disk
// store surviving process restarts. Load returns the tuples persisted for a
// key; Store persists them. Both are best-effort: a tier that fails (or
// distrusts what it read back) simply reports a miss or drops the write —
// the memory tier keeps working either way. Implementations must be safe
// for concurrent use; returned slices must not be modified by the tier
// afterwards.
type Tier interface {
	Load(k Key) ([]relation.Tuple, bool)
	Store(k Key, tuples []relation.Tuple)
}

// entry is one cached extraction with its byte-size estimate.
type entry struct {
	key    Key
	tuples []relation.Tuple
	bytes  int64
}

// Cache is a byte-bounded LRU map from extraction keys to tuple slices.
// Reads and writes go through the consumer goroutine of each execution in
// consumption order, so eviction order — and with it every hit/miss — is
// independent of worker scheduling; the mutex only makes the cache safe to
// share across executions (pilot, re-optimization phases, plans).
//
// Cached slices are returned by reference and must not be modified.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	lru      *list.List // front = most recent; values are *entry
	byKey    map[Key]*list.Element
	bytes    int64

	hits, misses, evictions, tierHits int64

	tier Tier
}

// NewCache builds an extraction cache holding at most maxBytes of estimated
// tuple payload (minimum one entry is always admitted). maxBytes <= 0
// returns nil — the disabled cache, on which every method no-ops.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{maxBytes: maxBytes, lru: list.New(), byKey: map[Key]*list.Element{}}
}

// entryBytes estimates the resident size of one cached extraction: a fixed
// per-entry overhead (key, list element, map slot) plus the tuple strings.
func entryBytes(tuples []relation.Tuple) int64 {
	b := int64(96)
	for _, t := range tuples {
		b += int64(len(t.A1)+len(t.A2)) + 48
	}
	return b
}

// SetTier attaches (or, with nil, detaches) a second cache level consulted
// on memory misses and written through on Put. Attach before executions
// start sharing the cache; the tier pointer itself is then read-only.
func (c *Cache) SetTier(t Tier) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tier = t
}

// Get returns the cached tuples for k, counting the hit or miss. A memory
// miss falls through to the tier (outside the lock — tier IO must not stall
// other executions); a tier hit is installed into the memory LRU and counts
// as a hit, so lazily warmed entries surface in the ordinary hit metrics.
func (c *Cache) Get(k Key) ([]relation.Tuple, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.byKey[k]
	if ok {
		c.hits++
		c.lru.MoveToFront(el)
		tuples := el.Value.(*entry).tuples
		c.mu.Unlock()
		return tuples, true
	}
	tier := c.tier
	if tier == nil {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()
	tuples, ok := tier.Load(k)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.tierHits++
	// Another execution may have installed k while the lock was dropped;
	// install dedupes on key either way.
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*entry).tuples, true
	}
	c.install(k, tuples)
	return tuples, true
}

// install inserts k's tuples into the memory LRU, evicting past the byte
// bound. Callers hold c.mu.
func (c *Cache) install(k Key, tuples []relation.Tuple) (evicted int) {
	e := &entry{key: k, tuples: tuples, bytes: entryBytes(tuples)}
	c.byKey[k] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		old := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.byKey, old.key)
		c.bytes -= old.bytes
		c.evictions++
		evicted++
	}
	return evicted
}

// Contains reports whether k is cached without touching the hit/miss
// accounting or the recency order — the engine's announce path uses it to
// avoid speculating on documents already paid for.
func (c *Cache) Contains(k Key) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[k]
	return ok
}

// Put inserts k's tuples, evicting least-recently-used entries past the
// byte bound, and returns how many entries were evicted. An oversized
// single entry is still admitted (and evicts everything else), so the
// hottest document is never un-cacheable. Re-putting an existing key
// refreshes its recency. Inserts write through to the tier (outside the
// lock), so a restart can warm from everything ever paid for — eviction
// only sheds the memory copy.
func (c *Cache) Put(k Key, tuples []relation.Tuple) (evicted int) {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return 0
	}
	evicted = c.install(k, tuples)
	tier := c.tier
	c.mu.Unlock()
	if tier != nil {
		tier.Store(k, tuples)
	}
	return evicted
}

// Stats snapshots the cache accounting.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Bytes: c.bytes, Entries: c.lru.Len(), TierHits: c.tierHits,
	}
}

// HitRate returns the observed hit fraction so far (0 before any lookup).
// The optimizer feeds it into its effective-cost predictions.
func (c *Cache) HitRate() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
