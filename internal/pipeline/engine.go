package pipeline

import (
	"runtime"
	"sync"

	"joinopt/internal/relation"
)

// DefaultWindow is the initial reorder-buffer bound: the number of announced
// extractions in flight per execution before the adaptive controller has any
// signal. The window then moves between MinWindow and MaxWindow: it grows
// while the consumer keeps blocking on extractions it could have announced
// earlier (the window, not the worker pool, is the bottleneck) and shrinks
// when speculation runs so far ahead that completed extractions pile up
// unconsumed (depth beyond what the consumer can absorb only costs memory).
// Growth is further capped by available parallelism — see NewEngine.
const (
	DefaultWindow = 32
	MinWindow     = 8
	MaxWindow     = 256
)

// batchSize is how many announced documents share one scheduling unit: a
// batch is handed to a worker as a whole and completion is signalled by a
// single channel close, so the per-document synchronization cost of the old
// goroutine-per-announcement scheme (spawn + channel + semaphore + close per
// document) is amortized over the batch.
const batchSize = 8

// futState tracks one announced key through the worker pool. Transitions
// happen under Engine.mu; a terminal state is readable without the lock once
// the owning batch's done channel has closed.
type futState uint8

const (
	futPending futState = iota // queued, not yet picked up by a worker
	futRunning                 // extraction in progress
	futDone                    // tuples valid
	futSkipped                 // dropped before a worker reached it
)

// future is one speculative extraction inside a batch. Futures are stored by
// value in their batch's slab (one allocation per batch, not per document)
// and addressed by pointer from the reorder buffer. key and batch are set
// before the batch is published to the pool; state, dropped, collected, and
// counted are guarded by Engine.mu; tuples is written by the worker before
// the batch's done close and read by the consumer only after it.
type future struct {
	key       Key
	batch     *batch
	state     futState
	dropped   bool // Drop called; a worker skips it unless already running
	collected bool // the consumer claimed or abandoned it
	counted   bool // currently counted in doneBacklog
	tuples    []relation.Tuple
}

// batch is the worker-pool scheduling unit: up to batchSize futures
// processed sequentially by one worker, with a single done close once every
// future in it has finished (extracted or skipped). The futs slab is built
// with capacity batchSize and never reallocates, so *future pointers into it
// stay valid for the batch's lifetime.
type batch struct {
	done      chan struct{}
	futs      []future
	submitted bool // consumer-only: queued to the pool
}

// Engine is the per-execution pipeline front end: Announce schedules
// speculative extraction of upcoming documents on the worker pool, and
// Resolve — called by the executor's single stepping goroutine, in stream
// order — returns each document's tuples from the shared cache, from a
// completed (or awaited) speculation, or by extracting inline. The in-flight
// futures keyed by document form the reorder buffer: workers complete in any
// order, the consumer collects strictly in consumption order.
//
// Announce/Resolve/Drop/Lookahead must be called from the consumer
// goroutine. A nil *Engine is the sequential path: Resolve extracts inline,
// everything else no-ops.
//
// The pool is dispatcher-style: announced batches queue up and at most
// `workers` worker goroutines exist at any moment; a worker exits when the
// queue drains and is respawned on the next submission. An engine therefore
// needs no Close — when an execution finishes, its queue is empty and every
// worker has already exited on its own.
//
// Lock discipline: the reorder-buffer maps (inflight, orphans, seen), the
// forming batch, the window, and the adaptation counters fed by the
// consumer are consumer-exclusive and unlocked — the announce dedup path,
// the hottest consumer operation, takes no lock at all. Engine.mu guards
// only what workers share: the batch queue, the worker count, per-future
// state flags, and the done-backlog counters.
type Engine struct {
	cache   *Cache
	extract func(Key) []relation.Tuple
	workers int

	// Consumer-exclusive state.
	window    int
	maxWindow int // adaptive-growth cap: parallelism bounds useful depth
	inflight  map[Key]*future
	orphans   map[Key]*future  // dropped speculations still owned by the pool
	seen      map[Key]struct{} // keys resolved this execution
	pending   *batch           // forming batch, not yet queued

	// Adaptive-window signals. fullRejects, waits, and sinceAdapt are
	// consumer-exclusive; doneBacklog and backlogPeak are mu-guarded (workers
	// update them as extractions finish).
	fullRejects int // announcements refused by a full window
	waits       int // resolves that blocked on an unfinished speculation
	sinceAdapt  int // resolves since the last adaptation

	mu          sync.Mutex
	queue       []*batch
	running     int // live worker goroutines, <= workers
	doneBacklog int // completed, unconsumed futures right now
	backlogPeak int // max doneBacklog since the last adaptation
}

// Frontend is the contract between the join executors and whatever supplies
// their extraction overlap: a single *Engine, or a sharded group of engines
// (internal/shard) routing each key to its owner shard. All methods are
// called from the executor's single stepping goroutine; implementations must
// preserve the engine's determinism discipline — Resolve returns the
// canonical extraction of the key regardless of speculation timing, and the
// accounting triple (tuples, hit, evicted) must be a pure function of the
// resolution order, never of worker scheduling. Executors hold a Frontend in
// an interface field, so unlike the nil-receiver-safe *Engine methods, a nil
// interface must be guarded by the caller (join.State.PipelineActive).
type Frontend interface {
	// Active reports whether the frontend changes the execution path at all.
	Active() bool
	// HasCache reports whether an extraction cache is attached.
	HasCache() bool
	// Lookahead returns how many upcoming documents to announce per step.
	Lookahead() int
	// Announce schedules speculative extraction; false means the window
	// refused the key and the caller should stop announcing this step.
	Announce(Key) bool
	// Resolve returns the canonical tuples for the key — from cache (hit),
	// from a speculation, or from inline — plus evicted cache entries.
	Resolve(k Key, inline func() []relation.Tuple) (tuples []relation.Tuple, hit bool, evicted int)
	// Drop abandons any speculation of k without consuming or caching it.
	Drop(Key)
}

var _ Frontend = (*Engine)(nil)

// NewEngine builds an engine over a shared extraction cache (nil = no
// caching) and a worker pool of the given size (< 1 = no speculation).
// extract must be a pure function of the key — it runs on worker goroutines.
// When both caching and speculation are disabled it returns nil, the
// zero-overhead sequential engine.
func NewEngine(cache *Cache, workers int, extract func(Key) []relation.Tuple) *Engine {
	if cache == nil && workers < 1 {
		return nil
	}
	// Window depth beyond what the pool can actually overlap is pure
	// announce-loop overhead: executors peek and announce O(window)
	// documents per step, and at most min(workers, GOMAXPROCS) extractions
	// run at once. Cap adaptive growth at a few batches per usable worker —
	// on a single-CPU machine the window simply never grows.
	p := workers
	if mp := runtime.GOMAXPROCS(0); mp < p {
		p = mp
	}
	maxW := p * batchSize * 4
	if maxW < DefaultWindow {
		maxW = DefaultWindow
	}
	if maxW > MaxWindow {
		maxW = MaxWindow
	}
	return &Engine{
		cache:     cache,
		extract:   extract,
		workers:   workers,
		window:    DefaultWindow,
		maxWindow: maxW,
		inflight:  map[Key]*future{},
		orphans:   map[Key]*future{},
		seen:      map[Key]struct{}{},
	}
}

// Active reports whether the engine changes the execution path at all.
func (e *Engine) Active() bool { return e != nil }

// HasCache reports whether an extraction cache is attached.
func (e *Engine) HasCache() bool { return e != nil && e.cache != nil }

// Lookahead returns how many upcoming documents an executor should announce
// per step — the current reorder-buffer window plus one batch of probe
// headroom when speculation is on, 0 otherwise. The probe announcements past
// the window are refused and cost only a map lookup, but they are the signal
// that tells the adaptive controller the window — not the worker pool — is
// what limits overlap. The window itself adapts, so the value can change
// between steps.
func (e *Engine) Lookahead() int {
	if e == nil || e.workers < 1 {
		return 0
	}
	return e.window + batchSize
}

// Announce schedules speculative extraction of k. Keys already resolved,
// cached, or in flight are skipped — announcing is always safe and never
// changes results, only overlap. Dropped announcements simply fall back to
// inline extraction at Resolve time. Re-announcing a key whose dropped
// speculation is still owned by the pool re-adopts that speculation instead
// of scheduling a second extraction of the same key.
//
// The return value is false exactly when a full window refused the key:
// nothing announced after it in the same step can be accepted either (slots
// free only at Resolve), so callers announcing a stream in order should stop
// at the first false and resume from that document on a later step. The
// executors combine this with a per-stream cursor over their (prefix-stable)
// peek lists, so each step announces only the newly exposed tail instead of
// re-hashing the whole lookahead window — the announce path is on the
// consumer's critical path, and at full speed it must cost nothing.
func (e *Engine) Announce(k Key) bool {
	if e == nil || e.workers < 1 {
		return false
	}
	if _, dup := e.seen[k]; dup {
		return true
	}
	if _, dup := e.inflight[k]; dup {
		return true
	}
	if orphan := e.orphans[k]; orphan != nil {
		delete(e.orphans, k)
		if e.adoptOrphan(orphan) {
			e.inflight[k] = orphan
			return true
		}
		// The worker already skipped it; schedule afresh below.
	}
	if len(e.inflight) >= e.window {
		e.fullRejects++
		return false
	}
	if e.cache.Contains(k) {
		return true
	}
	if e.pending == nil {
		e.pending = &batch{done: make(chan struct{}), futs: make([]future, 0, batchSize)}
	}
	b := e.pending
	b.futs = append(b.futs, future{key: k, batch: b})
	e.inflight[k] = &b.futs[len(b.futs)-1]
	if len(b.futs) >= batchSize {
		e.submit(b)
	}
	return true
}

// adoptOrphan reclaims a dropped speculation for its re-announced key. It
// returns false when the worker already skipped the orphan — such a future
// will never produce, so the caller must schedule a fresh extraction.
func (e *Engine) adoptOrphan(orphan *future) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if orphan.state == futSkipped {
		return false
	}
	orphan.dropped = false
	orphan.collected = false
	if orphan.state == futDone && !orphan.counted {
		orphan.counted = true
		e.doneBacklog++
	}
	return true
}

// submit queues a batch for the pool and spawns a worker if the pool is
// below its size.
func (e *Engine) submit(b *batch) {
	b.submitted = true
	if b == e.pending {
		e.pending = nil
	}
	e.mu.Lock()
	e.queue = append(e.queue, b)
	if e.running < e.workers {
		e.running++
		go e.worker()
	}
	e.mu.Unlock()
}

// worker drains the batch queue and exits when it is empty. At most
// e.workers workers are ever alive, so a pipelined execution adds a bounded
// number of goroutines no matter how many documents it announces.
func (e *Engine) worker() {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.running--
			e.mu.Unlock()
			return
		}
		b := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		e.runBatch(b)
	}
}

// runBatch extracts every live future in the batch, skipping dropped ones,
// then signals completion with the batch's single channel close. All writes
// to the batch's futures happen on this goroutine before the close, so
// consumers reading terminal state after <-b.done need no lock.
func (e *Engine) runBatch(b *batch) {
	for i := range b.futs {
		fut := &b.futs[i]
		e.mu.Lock()
		if fut.dropped {
			// Dropped before extraction started: release the slot without
			// doing the work.
			fut.state = futSkipped
			e.mu.Unlock()
			continue
		}
		fut.state = futRunning
		e.mu.Unlock()
		tuples := e.extract(fut.key)
		e.mu.Lock()
		fut.tuples = tuples
		fut.state = futDone
		if !fut.collected {
			fut.counted = true
			e.doneBacklog++
			if e.doneBacklog > e.backlogPeak {
				e.backlogPeak = e.doneBacklog
			}
		}
		e.mu.Unlock()
	}
	close(b.done)
}

// Resolve returns k's tuples: a cache hit is free (hit=true, and the caller
// charges zero tP); otherwise the speculative result is awaited (or inline
// runs the extraction on the calling goroutine) and the result enters the
// cache, paying full tP. evicted reports cache entries displaced by the
// insertion. The first resolution of a key always pays — speculation only
// moves work onto workers, it never changes what an execution is charged —
// so accounting is independent of prefetch timing.
func (e *Engine) Resolve(k Key, inline func() []relation.Tuple) (tuples []relation.Tuple, hit bool, evicted int) {
	if e == nil {
		return inline(), false, 0
	}
	e.seen[k] = struct{}{}
	fut := e.inflight[k]
	if fut != nil {
		delete(e.inflight, k)
	} else if orphan := e.orphans[k]; orphan != nil {
		// A dropped speculation of this very key is still in the pool: its
		// result is the canonical extraction, so collect it rather than
		// extracting the same document a second time.
		delete(e.orphans, k)
		if e.adoptOrphan(orphan) {
			fut = orphan
		}
	}
	var ready bool
	if fut != nil {
		if !fut.batch.submitted {
			// The consumer caught up with a still-forming batch — flush it
			// now so the wait below terminates.
			e.submit(fut.batch)
		}
		e.mu.Lock()
		fut.collected = true
		if fut.counted {
			fut.counted = false
			e.doneBacklog--
		}
		ready = fut.state == futDone
		e.mu.Unlock()
	}
	e.adapt(fut != nil && !ready)
	if t, ok := e.cache.Get(k); ok {
		if fut != nil {
			// The speculation is redundant; let a worker skip it if it has
			// not started yet.
			e.mu.Lock()
			fut.dropped = true
			e.mu.Unlock()
		}
		return t, true, 0
	}
	if fut != nil {
		<-fut.batch.done
		if fut.state == futDone {
			tuples = fut.tuples
		} else {
			tuples = inline()
		}
	} else {
		tuples = inline()
	}
	evicted = e.cache.Put(k, tuples)
	return tuples, false, evicted
}

// adapt retunes the reorder-buffer window once per window's worth of
// resolutions. Growth signal: the consumer blocked on an unfinished
// speculation while announcements were being refused by a full window —
// there was both demand for deeper lookahead and blocking, so a wider
// window would have kept more workers busy. One wait per interval is real
// signal: a blocked consumer wakes when a batch completes and then drains
// everything the pool finished in parallel, so even full starvation shows
// up as few, bursty waits rather than many. Shrink signal: the
// consumer never blocked yet completed extractions piled up past half the
// window — speculation is running further ahead than the consumer can
// absorb, and the excess depth only costs memory. The window never leaves
// [MinWindow, MaxWindow]. Window size changes speculation depth only, never
// results: the bit-identity property tests hold across every window
// trajectory.
func (e *Engine) adapt(waited bool) {
	if waited {
		e.waits++
	}
	e.sinceAdapt++
	if e.sinceAdapt < e.window {
		return
	}
	e.mu.Lock()
	peak := e.backlogPeak
	e.backlogPeak = e.doneBacklog
	e.mu.Unlock()
	switch {
	case e.fullRejects > 0 && e.waits > 0:
		if w := e.window * 2; w <= e.maxWindow {
			e.window = w
		} else {
			e.window = e.maxWindow
		}
	case e.waits == 0 && peak*2 > e.window:
		if w := e.window / 2; w >= MinWindow {
			e.window = w
		} else {
			e.window = MinWindow
		}
	}
	e.fullRejects = 0
	e.waits = 0
	e.sinceAdapt = 0
}

// Drop abandons any speculative extraction of k without consuming or caching
// its result, freeing the key's reorder-buffer slot. Executors call it when a
// substrate fault hands them a different document body (a truncated fetch)
// than the one workers speculated on. A dropped extraction no worker has
// started yet is skipped entirely — the slot is released without doing the
// work — and the speculation is remembered as an orphan so a re-announcement
// (or resolution) of the same key re-adopts it instead of extracting the
// document twice.
func (e *Engine) Drop(k Key) {
	if e == nil {
		return
	}
	fut := e.inflight[k]
	if fut == nil {
		return
	}
	delete(e.inflight, k)
	e.mu.Lock()
	fut.dropped = true
	fut.collected = true
	if fut.counted {
		fut.counted = false
		e.doneBacklog--
	}
	skipped := fut.state == futSkipped
	e.mu.Unlock()
	if !skipped {
		e.orphans[k] = fut
	}
}

// serialFraction is the measured share of pipelined execution that stays on
// the consumer goroutine and cannot overlap with extraction: stream
// accounting, tuple joining, reorder-buffer bookkeeping, and the announce
// pass. Profiling the executor benchmarks puts extraction at ~93% of
// sequential runtime with the remainder serial, and the batched engine adds
// a small consumer-side share of its own — ~3% serial matches the measured
// scaling of the fixed executors.
const serialFraction = 0.03

// EffectiveOverlap returns the extraction-time divisor a pool of n workers
// actually delivers, per Amdahl's law over the measured serial fraction:
// n / (1 + s·(n−1)). The optimizer divides its effective tE by this instead
// of the raw worker count, so predictions track the measured scaling curve
// rather than the old optimistic (and, before the batched engine, inverted)
// near-linear model. Overlap is also bounded by the reorder window — the
// engine never speculates further ahead than MaxWindow documents.
func EffectiveOverlap(workers int) float64 {
	n := workers
	if n > MaxWindow {
		n = MaxWindow
	}
	if n <= 1 {
		return 1
	}
	return float64(n) / (1 + serialFraction*float64(n-1))
}

// Cache exposes the attached shared cache (nil when caching is off).
func (e *Engine) Cache() *Cache {
	if e == nil {
		return nil
	}
	return e.cache
}
