package pipeline

import (
	"sync"

	"joinopt/internal/relation"
)

// DefaultWindow is the reorder-buffer bound: the maximum number of
// announced extractions in flight per execution. It is also the pipeline
// width the optimizer's overlap model uses — effective tP scales by
// 1/min(workers, DefaultWindow).
const DefaultWindow = 32

// future is one speculative extraction: workers publish tuples and close
// done; the consumer reads tuples only after done, so the channel close is
// the sole synchronization point.
type future struct {
	done   chan struct{}
	tuples []relation.Tuple
}

// Engine is the per-execution pipeline front end: Announce schedules
// speculative extraction of upcoming documents on the worker pool, and
// Resolve — called by the executor's single stepping goroutine, in stream
// order — returns each document's tuples from the shared cache, from a
// completed (or awaited) speculation, or by extracting inline. The in-flight
// futures keyed by document form the reorder buffer: workers complete in any
// order, the consumer collects strictly in consumption order.
//
// All methods must be called from the consumer goroutine. A nil *Engine is
// the sequential path: Resolve extracts inline, everything else no-ops.
type Engine struct {
	cache   *Cache
	extract func(Key) []relation.Tuple
	workers int
	window  int

	sem chan struct{} // worker-pool slots

	mu       sync.Mutex
	inflight map[Key]*future
	seen     map[Key]struct{} // keys resolved or announced this execution
}

// NewEngine builds an engine over a shared extraction cache (nil = no
// caching) and a worker pool of the given size (< 1 = no speculation).
// extract must be a pure function of the key — it runs on worker goroutines.
// When both caching and speculation are disabled it returns nil, the
// zero-overhead sequential engine.
func NewEngine(cache *Cache, workers int, extract func(Key) []relation.Tuple) *Engine {
	if cache == nil && workers < 1 {
		return nil
	}
	e := &Engine{
		cache:    cache,
		extract:  extract,
		workers:  workers,
		window:   DefaultWindow,
		inflight: map[Key]*future{},
		seen:     map[Key]struct{}{},
	}
	if workers >= 1 {
		e.sem = make(chan struct{}, workers)
	}
	return e
}

// Active reports whether the engine changes the execution path at all.
func (e *Engine) Active() bool { return e != nil }

// HasCache reports whether an extraction cache is attached.
func (e *Engine) HasCache() bool { return e != nil && e.cache != nil }

// Lookahead returns how many upcoming documents an executor should announce
// per step — the reorder-buffer window when speculation is on, 0 otherwise.
func (e *Engine) Lookahead() int {
	if e == nil || e.sem == nil {
		return 0
	}
	return e.window
}

// Announce schedules speculative extraction of k. Keys already resolved,
// cached, in flight, or beyond the window bound are skipped — announcing is
// always safe and never changes results, only overlap. Dropped
// announcements simply fall back to inline extraction at Resolve time.
func (e *Engine) Announce(k Key) {
	if e == nil || e.sem == nil {
		return
	}
	e.mu.Lock()
	if _, dup := e.seen[k]; dup {
		e.mu.Unlock()
		return
	}
	if _, dup := e.inflight[k]; dup || len(e.inflight) >= e.window {
		e.mu.Unlock()
		return
	}
	if e.cache.Contains(k) {
		e.mu.Unlock()
		return
	}
	fut := &future{done: make(chan struct{})}
	e.inflight[k] = fut
	e.mu.Unlock()
	go func() {
		e.sem <- struct{}{}
		fut.tuples = e.extract(k)
		<-e.sem
		close(fut.done)
	}()
}

// Resolve returns k's tuples: a cache hit is free (hit=true, and the caller
// charges zero tP); otherwise the speculative result is awaited (or inline
// runs the extraction on the calling goroutine) and the result enters the
// cache, paying full tP. evicted reports cache entries displaced by the
// insertion. The first resolution of a key always pays — speculation only
// moves work onto workers, it never changes what an execution is charged —
// so accounting is independent of prefetch timing.
func (e *Engine) Resolve(k Key, inline func() []relation.Tuple) (tuples []relation.Tuple, hit bool, evicted int) {
	if e == nil {
		return inline(), false, 0
	}
	e.mu.Lock()
	e.seen[k] = struct{}{}
	fut := e.inflight[k]
	if fut != nil {
		delete(e.inflight, k)
	}
	e.mu.Unlock()
	if t, ok := e.cache.Get(k); ok {
		return t, true, 0
	}
	if fut != nil {
		<-fut.done
		tuples = fut.tuples
	} else {
		tuples = inline()
	}
	evicted = e.cache.Put(k, tuples)
	return tuples, false, evicted
}

// Drop abandons any speculative extraction of k without consuming or caching
// its result, freeing the key's reorder-buffer slot. Executors call it when a
// substrate fault hands them a different document body (a truncated fetch)
// than the one workers speculated on.
func (e *Engine) Drop(k Key) {
	if e == nil {
		return
	}
	e.mu.Lock()
	delete(e.inflight, k)
	e.mu.Unlock()
}

// Cache exposes the attached shared cache (nil when caching is off).
func (e *Engine) Cache() *Cache {
	if e == nil {
		return nil
	}
	return e.cache
}
