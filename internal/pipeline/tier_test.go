package pipeline

import (
	"sync"
	"testing"

	"joinopt/internal/relation"
)

// fakeTier is an in-memory Tier with call accounting.
type fakeTier struct {
	mu     sync.Mutex
	m      map[Key][]relation.Tuple
	loads  int
	stores int
}

func newFakeTier() *fakeTier { return &fakeTier{m: map[Key][]relation.Tuple{}} }

func (f *fakeTier) Load(k Key) ([]relation.Tuple, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	t, ok := f.m[k]
	return t, ok
}

func (f *fakeTier) Store(k Key, tuples []relation.Tuple) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.m[k] = tuples
}

func TestCacheTierWriteThroughAndLazyWarm(t *testing.T) {
	tier := newFakeTier()
	c := NewCache(1 << 20)
	c.SetTier(tier)

	k := Key{Side: 0, DocID: 7, Theta: 0.4}
	tuples := []relation.Tuple{{A1: "acme", A2: "boston"}}
	c.Put(k, tuples)
	if tier.stores != 1 {
		t.Fatalf("stores = %d, want 1 (write-through)", tier.stores)
	}
	if got, ok := c.Get(k); !ok || len(got) != 1 {
		t.Fatal("memory hit lost")
	}
	if tier.loads != 0 {
		t.Fatalf("memory hit consulted the tier (%d loads)", tier.loads)
	}

	// A fresh cache over the same tier — the restart case: first Get warms
	// from the tier and counts as a hit, the second is served from memory.
	warm := NewCache(1 << 20)
	warm.SetTier(tier)
	if got, ok := warm.Get(k); !ok || len(got) != 1 || got[0] != tuples[0] {
		t.Fatalf("tier warm-up Get = %v, %v", got, ok)
	}
	if loads := tier.loads; loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	if _, ok := warm.Get(k); !ok {
		t.Fatal("warmed entry not resident")
	}
	if tier.loads != 1 {
		t.Fatalf("second Get consulted the tier again (%d loads)", tier.loads)
	}
	s := warm.Stats()
	if s.Hits != 2 || s.Misses != 0 || s.TierHits != 1 {
		t.Fatalf("stats = %+v, want 2 hits (1 from tier), 0 misses", s)
	}

	// A key in neither level is a single miss, after consulting the tier.
	if _, ok := warm.Get(Key{Side: 1, DocID: 99, Theta: 0.8}); ok {
		t.Fatal("phantom hit")
	}
	if s := warm.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
}

func TestCacheTierEvictionKeepsTierCopy(t *testing.T) {
	tier := newFakeTier()
	c := NewCache(200) // fits one entry and change
	c.SetTier(tier)
	k1 := Key{DocID: 1, Theta: 0.4}
	k2 := Key{DocID: 2, Theta: 0.4}
	c.Put(k1, []relation.Tuple{{A1: "one-long-value", A2: "another-long-value"}})
	c.Put(k2, []relation.Tuple{{A1: "two-long-value", A2: "another-long-value"}})
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("expected eviction under the byte bound, stats %+v", s)
	}
	// The evicted entry is still one tier load away.
	if got, ok := c.Get(k1); !ok || len(got) != 1 {
		t.Fatal("evicted entry not recoverable from tier")
	}
	if s := c.Stats(); s.TierHits != 1 {
		t.Fatalf("TierHits = %d, want 1", s.TierHits)
	}
}

func TestCacheNilAndTierlessUnchanged(t *testing.T) {
	var nilCache *Cache
	nilCache.SetTier(newFakeTier())
	if _, ok := nilCache.Get(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	c := NewCache(1 << 10)
	c.Put(Key{DocID: 3}, nil)
	if _, ok := c.Get(Key{DocID: 3}); !ok {
		t.Fatal("tierless cache lost its entry")
	}
	if _, ok := c.Get(Key{DocID: 4}); ok {
		t.Fatal("tierless phantom hit")
	}
	if s := c.Stats(); s.TierHits != 0 {
		t.Fatalf("TierHits = %d on tierless cache", s.TierHits)
	}
}
