package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"joinopt/internal/relation"
)

func tuples(n int, tag string) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{A1: fmt.Sprintf("%s-a%d", tag, i), A2: fmt.Sprintf("%s-b%d", tag, i)}
	}
	return out
}

func TestNewCacheDisabled(t *testing.T) {
	for _, b := range []int64{0, -1} {
		if c := NewCache(b); c != nil {
			t.Fatalf("NewCache(%d) = %v, want nil", b, c)
		}
	}
	// Every method must be a no-op on the disabled cache.
	var c *Cache
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil cache reported a hit")
	}
	if c.Contains(Key{}) {
		t.Fatal("nil cache reported containment")
	}
	if n := c.Put(Key{}, nil); n != 0 {
		t.Fatalf("nil cache evicted %d", n)
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
	if hr := c.HitRate(); hr != 0 {
		t.Fatalf("nil cache hit rate %v", hr)
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(1 << 20)
	k1 := Key{Side: 0, DocID: 1, Theta: 0.4}
	k2 := Key{Side: 1, DocID: 1, Theta: 0.4}
	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, tuples(3, "x"))
	if got, ok := c.Get(k1); !ok || len(got) != 3 {
		t.Fatalf("Get after Put: ok=%v len=%d", ok, len(got))
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("hit on a different side's key")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Evictions != 0 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry", s)
	}
	if hr := c.HitRate(); hr != 1.0/3.0 {
		t.Fatalf("hit rate %v, want 1/3", hr)
	}
}

func TestCacheContainsNoAccounting(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{DocID: 7, Theta: 0.8}
	if c.Contains(k) {
		t.Fatal("empty cache contains key")
	}
	c.Put(k, tuples(1, "x"))
	if !c.Contains(k) {
		t.Fatal("cache lost its key")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("Contains touched accounting: %+v", s)
	}
}

func TestCacheEvictsAtByteBound(t *testing.T) {
	payload := tuples(4, "x")
	per := entryBytes(payload)
	c := NewCache(3 * per) // room for exactly three entries
	for i := 0; i < 5; i++ {
		c.Put(Key{DocID: i}, payload)
	}
	s := c.Stats()
	if s.Entries != 3 {
		t.Fatalf("entries %d, want 3 (bound %d bytes, %d per entry)", s.Entries, 3*per, per)
	}
	if s.Bytes > 3*per {
		t.Fatalf("resident bytes %d over bound %d", s.Bytes, 3*per)
	}
	if s.Evictions != 2 {
		t.Fatalf("evictions %d, want 2", s.Evictions)
	}
	// LRU order: 0 and 1 evicted, 2..4 resident.
	for i := 0; i < 5; i++ {
		if want := i >= 2; c.Contains(Key{DocID: i}) != want {
			t.Errorf("doc %d cached=%v, want %v", i, !want, want)
		}
	}
}

func TestCacheOversizedEntryAdmitted(t *testing.T) {
	small := tuples(1, "s")
	big := tuples(100, "big")
	c := NewCache(entryBytes(small) + 1)
	c.Put(Key{DocID: 1}, small)
	if n := c.Put(Key{DocID: 2}, big); n != 1 {
		t.Fatalf("oversized put evicted %d, want 1", n)
	}
	if !c.Contains(Key{DocID: 2}) || c.Contains(Key{DocID: 1}) {
		t.Fatal("oversized entry must be admitted, evicting the rest")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries %d, want the single oversized entry", s.Entries)
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	payload := tuples(2, "x")
	c := NewCache(2 * entryBytes(payload))
	c.Put(Key{DocID: 1}, payload)
	c.Put(Key{DocID: 2}, payload)
	c.Get(Key{DocID: 1}) // 1 becomes most recent; 2 is now LRU
	c.Put(Key{DocID: 3}, payload)
	if !c.Contains(Key{DocID: 1}) || c.Contains(Key{DocID: 2}) {
		t.Fatal("Get must refresh recency: expected doc 2 evicted, doc 1 kept")
	}
}

func TestNewEngineDisabled(t *testing.T) {
	if e := NewEngine(nil, 0, nil); e != nil {
		t.Fatalf("no cache, no workers: engine %v, want nil", e)
	}
	var e *Engine
	if e.Active() || e.HasCache() || e.Lookahead() != 0 || e.Cache() != nil {
		t.Fatal("nil engine must report fully inactive")
	}
	e.Announce(Key{}) // must not panic
	got, hit, ev := e.Resolve(Key{DocID: 1}, func() []relation.Tuple { return tuples(2, "x") })
	if hit || ev != 0 || len(got) != 2 {
		t.Fatalf("nil engine Resolve = (%d tuples, hit=%v, evicted=%d), want inline", len(got), hit, ev)
	}
}

func TestEngineCacheOnly(t *testing.T) {
	e := NewEngine(NewCache(1<<20), 0, nil)
	if !e.Active() || !e.HasCache() {
		t.Fatal("cache-only engine must be active")
	}
	if e.Lookahead() != 0 {
		t.Fatalf("cache-only lookahead %d, want 0 (no speculation)", e.Lookahead())
	}
	e.Announce(Key{DocID: 1}) // no-op without workers
	calls := 0
	inline := func() []relation.Tuple { calls++; return tuples(2, "x") }
	k := Key{DocID: 1, Theta: 0.4}
	if _, hit, _ := e.Resolve(k, inline); hit {
		t.Fatal("first resolution reported a hit")
	}
	got, hit, _ := e.Resolve(k, inline)
	if !hit || len(got) != 2 {
		t.Fatalf("second resolution: hit=%v len=%d, want cached", hit, len(got))
	}
	if calls != 1 {
		t.Fatalf("inline extraction ran %d times, want 1", calls)
	}
}

func TestEngineSpeculation(t *testing.T) {
	var mu sync.Mutex
	extracted := map[Key]int{}
	extract := func(k Key) []relation.Tuple {
		mu.Lock()
		extracted[k]++
		mu.Unlock()
		return tuples(k.DocID%3, fmt.Sprintf("d%d", k.DocID))
	}
	e := NewEngine(nil, 4, extract)
	if e.HasCache() {
		t.Fatal("no cache attached")
	}
	if e.Lookahead() != DefaultWindow+batchSize {
		t.Fatalf("lookahead %d, want window %d plus one batch of probe headroom", e.Lookahead(), DefaultWindow)
	}
	// Announce a batch (with duplicates), then resolve in order.
	for i := 0; i < 10; i++ {
		e.Announce(Key{DocID: i})
		e.Announce(Key{DocID: i})
	}
	for i := 0; i < 10; i++ {
		k := Key{DocID: i}
		got, hit, ev := e.Resolve(k, func() []relation.Tuple { return extract(k) })
		if hit || ev != 0 {
			t.Fatalf("doc %d: hit=%v evicted=%d without a cache", i, hit, ev)
		}
		if len(got) != i%3 {
			t.Fatalf("doc %d: %d tuples, want %d", i, len(got), i%3)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for k, n := range extracted {
		if n != 1 {
			t.Errorf("key %+v extracted %d times, want exactly once", k, n)
		}
	}
}

func TestEngineUnannouncedFallsBackInline(t *testing.T) {
	e := NewEngine(nil, 2, func(Key) []relation.Tuple { t.Fatal("worker extraction must not run"); return nil })
	got, hit, _ := e.Resolve(Key{DocID: 42}, func() []relation.Tuple { return tuples(1, "inline") })
	if hit || len(got) != 1 {
		t.Fatalf("unannounced resolve: hit=%v len=%d, want inline result", hit, len(got))
	}
}

func TestEngineWindowBound(t *testing.T) {
	block := make(chan struct{})
	e := NewEngine(nil, 1, func(Key) []relation.Tuple { <-block; return nil })
	for i := 0; i < 3*DefaultWindow; i++ {
		e.Announce(Key{DocID: i})
	}
	e.mu.Lock()
	inflight := len(e.inflight)
	e.mu.Unlock()
	if inflight > DefaultWindow {
		t.Fatalf("%d announcements in flight, window is %d", inflight, DefaultWindow)
	}
	close(block)
	for i := 0; i < 3*DefaultWindow; i++ {
		k := Key{DocID: i}
		e.Resolve(k, func() []relation.Tuple { return nil })
	}
}

func TestEngineSkipsAnnouncingCachedKeys(t *testing.T) {
	cache := NewCache(1 << 20)
	k := Key{DocID: 5, Theta: 0.4}
	cache.Put(k, tuples(2, "warm"))
	e := NewEngine(cache, 2, func(Key) []relation.Tuple { t.Error("cached key must not be speculated"); return nil })
	e.Announce(k)
	got, hit, _ := e.Resolve(k, func() []relation.Tuple { t.Error("cached key must not extract inline"); return nil })
	if !hit || len(got) != 2 {
		t.Fatalf("warm key: hit=%v len=%d", hit, len(got))
	}
}

// TestEngineGoroutineBound is the regression guard for the old
// goroutine-per-announcement scheme: announcing a full window of documents
// must add at most `workers` goroutines, because speculation runs on a
// persistent dispatcher pool, not on per-document spawns.
func TestEngineGoroutineBound(t *testing.T) {
	const workers = 4
	release := make(chan struct{})
	e := NewEngine(nil, workers, func(Key) []relation.Tuple { <-release; return nil })
	base := runtime.NumGoroutine()
	for i := 0; i < 3*DefaultWindow; i++ {
		e.Announce(Key{DocID: i})
	}
	// Every submitted batch is now queued and the pool is saturated: the
	// goroutine count must be bounded by the pool size, never by the number
	// of announcements.
	if n := runtime.NumGoroutine(); n > base+workers {
		t.Fatalf("%d goroutines after announcing %d docs (started from %d): pool of %d leaked per-doc goroutines",
			n, 3*DefaultWindow, base, workers)
	}
	close(release)
	for i := 0; i < 3*DefaultWindow; i++ {
		e.Resolve(Key{DocID: i}, func() []relation.Tuple { return nil })
	}
	// After the run drains, the workers must have exited on their own — the
	// engine has no Close, so a lingering pool would leak per execution.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("%d goroutines after the run drained, started from %d: workers did not exit", n, base)
	}
}

// TestEngineDropSkipsPendingWork pins the prompt-release half of Drop: a
// dropped speculation no worker has started is skipped outright — the
// extraction never runs and the consumer falls back to inline.
func TestEngineDropSkipsPendingWork(t *testing.T) {
	var mu sync.Mutex
	extracted := map[Key]int{}
	release := make(chan struct{})
	e := NewEngine(nil, 1, func(k Key) []relation.Tuple {
		if k.DocID == 0 {
			<-release // hold the only worker inside doc 0
		}
		mu.Lock()
		extracted[k]++
		mu.Unlock()
		return nil
	})
	for i := 0; i < batchSize; i++ { // one full batch: docs 0..7, worker blocks on 0
		e.Announce(Key{DocID: i})
	}
	dropped := Key{DocID: batchSize - 1}
	e.Drop(dropped) // still pending: the worker is held inside doc 0
	close(release)
	inlined := false
	for i := 0; i < batchSize; i++ {
		k := Key{DocID: i}
		e.Resolve(k, func() []relation.Tuple {
			if k == dropped {
				inlined = true
			}
			return nil
		})
	}
	mu.Lock()
	defer mu.Unlock()
	if n := extracted[dropped]; n != 0 {
		t.Fatalf("dropped pending key extracted %d times, want the worker to skip it", n)
	}
	if !inlined {
		t.Fatal("dropped key did not fall back to inline extraction")
	}
}

// TestEngineReannounceAfterDropAdoptsOrphan pins the no-double-extraction
// half of Drop: re-announcing a key whose dropped speculation is still in
// flight must re-adopt that speculation, not schedule a second extraction.
func TestEngineReannounceAfterDropAdoptsOrphan(t *testing.T) {
	var mu sync.Mutex
	extracted := map[Key]int{}
	release := make(chan struct{})
	e := NewEngine(nil, 1, func(k Key) []relation.Tuple {
		if k.DocID == 0 {
			<-release
		}
		mu.Lock()
		extracted[k]++
		mu.Unlock()
		return tuples(1, fmt.Sprintf("d%d", k.DocID))
	})
	for i := 0; i < batchSize; i++ {
		e.Announce(Key{DocID: i})
	}
	victim := Key{DocID: 3}
	e.Drop(victim)     // orphaned while the worker is held on doc 0
	e.Announce(victim) // must re-adopt the orphan, not extract twice
	close(release)
	for i := 0; i < batchSize; i++ {
		got, _, _ := e.Resolve(Key{DocID: i}, func() []relation.Tuple {
			t.Errorf("doc %d resolved inline; the adopted speculation should serve it", i)
			return nil
		})
		if len(got) != 1 {
			t.Fatalf("doc %d: %d tuples, want 1", i, len(got))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for k, n := range extracted {
		if n != 1 {
			t.Errorf("key %+v extracted %d times, want exactly once", k, n)
		}
	}
}

// TestEngineResolveCollectsOrphan covers the resolution path of the same
// property: when a dropped speculation's key is resolved (no re-announce),
// the orphan's result is collected instead of extracting inline a second
// time.
func TestEngineResolveCollectsOrphan(t *testing.T) {
	var mu sync.Mutex
	extracted := map[Key]int{}
	e := NewEngine(nil, 2, func(k Key) []relation.Tuple {
		mu.Lock()
		extracted[k]++
		mu.Unlock()
		return tuples(2, fmt.Sprintf("d%d", k.DocID))
	})
	for i := 0; i < batchSize; i++ {
		e.Announce(Key{DocID: i})
	}
	victim := Key{DocID: 5}
	e.Drop(victim)
	got, hit, _ := e.Resolve(victim, func() []relation.Tuple {
		// Inline fallback is legal only if the orphan was skipped before it
		// ran; in that case it must be the sole extraction.
		return tuples(2, "inline")
	})
	if hit || len(got) != 2 {
		t.Fatalf("resolve after drop: hit=%v len=%d", hit, len(got))
	}
	for i := 0; i < batchSize; i++ {
		e.Resolve(Key{DocID: i}, func() []relation.Tuple { return nil })
	}
	mu.Lock()
	defer mu.Unlock()
	if n := extracted[victim]; n > 1 {
		t.Fatalf("dropped key extracted %d times after resolve, want at most once", n)
	}
}

// TestEngineWindowGrowsUnderStarvation drives the executor announce/resolve
// rhythm with slow extractions and window-limited announcements: the
// adaptive controller must widen the window beyond its initial bound.
func TestEngineWindowGrowsUnderStarvation(t *testing.T) {
	e := NewEngine(nil, 4, func(Key) []relation.Tuple {
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	// NewEngine caps growth by GOMAXPROCS; lift the cap so the controller's
	// grow signal is observable regardless of the host's core count.
	e.maxWindow = MaxWindow
	for i := 0; i < 3*DefaultWindow; i++ {
		// Announce the sliding lookahead range past the cursor, as the
		// executors do each step; dedup makes re-announcements free.
		for j := i; j < i+e.Lookahead(); j++ {
			e.Announce(Key{DocID: j})
		}
		e.Resolve(Key{DocID: i}, func() []relation.Tuple { return nil })
	}
	if e.window <= DefaultWindow {
		t.Fatalf("window %d after sustained waits with window-limited announcements, want > %d", e.window, DefaultWindow)
	}
}

// TestEngineWindowShrinksWhenConsumerLags covers the opposite signal:
// extractions finish instantly and pile up while the consumer never blocks,
// so speculative depth is wasted and the window must contract.
func TestEngineWindowShrinksWhenConsumerLags(t *testing.T) {
	e := NewEngine(nil, 4, func(Key) []relation.Tuple { return nil })
	for i := 0; i < DefaultWindow; i++ {
		e.Announce(Key{DocID: i})
	}
	// Wait until every announced extraction has completed, so the backlog
	// peak reaches the full window before any resolution.
	for deadline := time.Now().Add(2 * time.Second); ; {
		e.mu.Lock()
		backlog := e.doneBacklog
		e.mu.Unlock()
		if backlog >= DefaultWindow || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < DefaultWindow; i++ {
		e.Resolve(Key{DocID: i}, func() []relation.Tuple { return nil })
	}
	if e.window >= DefaultWindow {
		t.Fatalf("window %d after an all-done backlog with zero waits, want < %d", e.window, DefaultWindow)
	}
	if e.window < MinWindow {
		t.Fatalf("window %d shrank below MinWindow %d", e.window, MinWindow)
	}
}

// TestEngineConcurrentResolve exercises the announce/resolve protocol with
// many in-flight extractions so `go test -race` can observe the
// synchronization between worker goroutines and the consumer.
func TestEngineConcurrentResolve(t *testing.T) {
	cache := NewCache(1 << 16)
	e := NewEngine(cache, 8, func(k Key) []relation.Tuple {
		return tuples(1+k.DocID%5, fmt.Sprintf("d%d", k.DocID))
	})
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i++ {
			if i%7 == 0 {
				e.Announce(Key{DocID: i + 13}) // prefetch ahead of consumption
			}
			e.Announce(Key{DocID: i})
			k := Key{DocID: i}
			got, _, _ := e.Resolve(k, func() []relation.Tuple {
				return tuples(1+k.DocID%5, fmt.Sprintf("d%d", k.DocID))
			})
			if want := 1 + i%5; len(got) != want {
				t.Fatalf("round %d doc %d: %d tuples, want %d", round, i, len(got), want)
			}
		}
	}
}

// TestEffectiveOverlap pins the Amdahl-style scaling model the optimizer's
// cost estimates divide by: no benefit at or below one worker, strictly
// more overlap with more workers, but always sublinear (the sequential
// consumer bounds it) and saturating at the MaxWindow cap.
func TestEffectiveOverlap(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if got := EffectiveOverlap(n); got != 1 {
			t.Errorf("EffectiveOverlap(%d) = %v, want 1", n, got)
		}
	}
	prev := 1.0
	for n := 2; n <= 64; n *= 2 {
		got := EffectiveOverlap(n)
		if got <= prev {
			t.Errorf("EffectiveOverlap(%d) = %v, want > EffectiveOverlap(%d) = %v", n, got, n/2, prev)
		}
		if got >= float64(n) {
			t.Errorf("EffectiveOverlap(%d) = %v, want < %d (overlap must be sublinear)", n, got, n)
		}
		prev = got
	}
	if a, b := EffectiveOverlap(MaxWindow), EffectiveOverlap(MaxWindow*4); a != b {
		t.Errorf("EffectiveOverlap should saturate at MaxWindow: got %v at %d, %v at %d", a, MaxWindow, b, MaxWindow*4)
	}
}
