package retrieval

import "joinopt/internal/obs"

// instrumented wraps a strategy and emits a trace event for every query the
// underlying strategy issues (AQG query batches), detected through Counts
// deltas so wrapped fault injectors and plain strategies are observed alike.
// It always exposes the fallible path so a single pull shape reaches the
// executors regardless of wrapping depth.
type instrumented struct {
	s    Strategy
	side int // 1-based, as rendered in trace events
	tr   *obs.Trace
	prev Counts
}

// Instrument wraps s so query issuance is traced to tr. The side is the
// 1-based database side used in the emitted events; timestamps come from the
// trace's clock (bound to the executor's cost-model time by the workload
// layer). A nil or disabled trace returns s unwrapped.
func Instrument(s Strategy, side int, tr *obs.Trace) Strategy {
	if !tr.Enabled() {
		return s
	}
	return &instrumented{s: s, side: side, tr: tr}
}

// Next implements Strategy.
func (w *instrumented) Next() (int, bool) {
	id, ok := w.s.Next()
	w.observe()
	return id, ok
}

// NextFallible implements Fallible, delegating through Pull so plain
// strategies and fault-wrapped ones are driven uniformly.
func (w *instrumented) NextFallible() (int, bool, float64, error) {
	id, ok, cost, err := Pull(w.s)
	w.observe()
	return id, ok, cost, err
}

// observe emits one query event per query issued since the last pull.
func (w *instrumented) observe() {
	now := w.s.Counts()
	for q := w.prev.Queries; q < now.Queries; q++ {
		w.tr.Emit(obs.KindQuery, w.side, map[string]any{"strategy": string(w.s.Kind()), "n": q + 1})
	}
	w.prev = now
}

// Peek implements Peeker when the wrapped strategy supports it. Peeks are
// not traced: they perform no accountable work.
func (w *instrumented) Peek(k int) []int { return PeekAhead(w.s, k) }

// Kind implements Strategy.
func (w *instrumented) Kind() Kind { return w.s.Kind() }

// Counts implements Strategy.
func (w *instrumented) Counts() Counts { return w.s.Counts() }
