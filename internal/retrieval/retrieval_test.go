package retrieval

import (
	"strings"
	"testing"

	"joinopt/internal/corpus"
	"joinopt/internal/index"
	"joinopt/internal/qxtract"
	"joinopt/internal/relation"
	"joinopt/internal/stat"
	"joinopt/internal/textgen"
)

func makeDB(t *testing.T, seed int64) *corpus.DB {
	t.Helper()
	g := textgen.NewGazetteer(300, 240, 120)
	g.Companies = textgen.Shuffled(stat.NewRNG(99), g.Companies)
	spec := corpus.RelationSpec{
		Vocab:         textgen.VocabHQ,
		Schema:        relation.Schema{Name: "Headquarters", Attr1: "Company", Attr2: "Location"},
		GoodValues:    g.Companies[:120],
		BadValues:     g.Companies[100:160],
		GoodSeconds:   g.Locations[:60],
		BadSeconds:    g.Locations[60:120],
		GoodFreq:      stat.MustPowerLaw(2.0, 8),
		BadFreq:       stat.MustPowerLaw(2.2, 6),
		NumGoodDocs:   120,
		NumBadDocs:    50,
		BadInGoodRate: 0.3,
	}
	db, err := corpus.Generate(corpus.Config{
		Name: "rdb", NumDocs: 500, Seed: seed,
		Relations:  []corpus.RelationSpec{spec},
		CasualRate: 0.2, CasualPool: g.Companies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestScanCoversAllDocsInOrder(t *testing.T) {
	s := NewScan(5)
	var got []int
	for {
		id, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, id)
	}
	if len(got) != 5 {
		t.Fatalf("scanned %v", got)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("scan order %v", got)
		}
	}
	if s.Counts().Retrieved != 5 {
		t.Errorf("retrieved %d", s.Counts().Retrieved)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted scan must stay exhausted")
	}
	if s.Kind() != SC {
		t.Error("kind wrong")
	}
}

// acceptContains accepts documents containing a marker substring.
type acceptContains string

func (a acceptContains) Classify(text string) bool { return strings.Contains(text, string(a)) }

func TestFilteredScanFilters(t *testing.T) {
	db := makeDB(t, 1)
	fs, err := NewFilteredScan(db, acceptContains("headquartered"))
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for {
		id, ok := fs.Next()
		if !ok {
			break
		}
		if !strings.Contains(db.Doc(id).Text, "headquartered") {
			t.Fatal("rejected document handed out")
		}
		accepted++
	}
	c := fs.Counts()
	if c.Retrieved != db.Size() {
		t.Errorf("FS must retrieve the whole database, got %d", c.Retrieved)
	}
	if c.Filtered != db.Size()-accepted {
		t.Errorf("filtered %d, want %d", c.Filtered, db.Size()-accepted)
	}
	if accepted == 0 {
		t.Error("no documents accepted")
	}
	if fs.Kind() != FS {
		t.Error("kind wrong")
	}
}

func TestFilteredScanNeedsClassifier(t *testing.T) {
	db := makeDB(t, 2)
	if _, err := NewFilteredScan(db, nil); err == nil {
		t.Error("expected error for nil classifier")
	}
}

func dbIndex(db *corpus.DB, topK int) *index.Index {
	texts := make([]string, db.Size())
	for i, d := range db.Docs {
		texts[i] = d.Text
	}
	return index.New(texts, topK)
}

func TestAQGStreamsQueryMatches(t *testing.T) {
	db := makeDB(t, 3)
	ix := dbIndex(db, 0)
	queries := []qxtract.Query{
		{Terms: []string{"headquartered"}},
		{Terms: []string{"headquarters"}},
	}
	a, err := NewAQG(ix, queries)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for {
		id, ok := a.Next()
		if !ok {
			break
		}
		if seen[id] {
			t.Fatal("AQG returned a document twice")
		}
		seen[id] = true
		text := db.Doc(id).Text
		if !strings.Contains(text, "headquartered") && !strings.Contains(text, "headquarters") {
			t.Fatal("AQG returned a non-matching document")
		}
	}
	c := a.Counts()
	if c.Queries != 2 {
		t.Errorf("queries issued %d, want 2", c.Queries)
	}
	if c.Retrieved != len(seen) {
		t.Errorf("retrieved %d, handed out %d", c.Retrieved, len(seen))
	}
	if len(seen) == 0 {
		t.Error("no documents retrieved")
	}
	if a.Kind() != AQG {
		t.Error("kind wrong")
	}
}

func TestAQGRespectsTopK(t *testing.T) {
	db := makeDB(t, 4)
	unlimited := dbIndex(db, 0)
	capped := dbIndex(db, 3)
	q := []qxtract.Query{{Terms: []string{"headquartered"}}}

	a1, _ := NewAQG(unlimited, q)
	a2, _ := NewAQG(capped, q)
	count := func(s Strategy) int {
		n := 0
		for {
			if _, ok := s.Next(); !ok {
				return n
			}
			n++
		}
	}
	n1, n2 := count(a1), count(a2)
	if n2 > 3 {
		t.Errorf("capped AQG returned %d docs", n2)
	}
	if n1 <= n2 {
		t.Errorf("uncapped %d should exceed capped %d", n1, n2)
	}
}

func TestAQGNeedsQueries(t *testing.T) {
	db := makeDB(t, 5)
	if _, err := NewAQG(dbIndex(db, 0), nil); err == nil {
		t.Error("expected error for empty query set")
	}
}

func TestAQGDeduplicatesAcrossQueries(t *testing.T) {
	db := makeDB(t, 6)
	ix := dbIndex(db, 0)
	// The same query twice: the second issue retrieves nothing new.
	q := []qxtract.Query{{Terms: []string{"headquartered"}}, {Terms: []string{"headquartered"}}}
	a, _ := NewAQG(ix, q)
	n := 0
	for {
		if _, ok := a.Next(); !ok {
			break
		}
		n++
	}
	if a.Counts().Queries != 2 {
		t.Errorf("queries %d", a.Counts().Queries)
	}
	want := len(ix.Search(index.Query{Terms: []string{"headquartered"}}))
	if n != want {
		t.Errorf("retrieved %d, want %d unique docs", n, want)
	}
}
