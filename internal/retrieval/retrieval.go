// Package retrieval implements the document retrieval strategies of §III-B
// as streaming document sources: Scan (SC), Filtered Scan (FS), and
// Automatic Query Generation (AQG). Join executors pull document IDs from a
// Strategy one at a time and account for the retrieval work it performs.
package retrieval

import (
	"fmt"

	"joinopt/internal/classifier"
	"joinopt/internal/corpus"
	"joinopt/internal/index"
	"joinopt/internal/qxtract"
)

// Kind identifies a retrieval strategy.
type Kind string

// The retrieval strategies of the paper.
const (
	SC  Kind = "SC"  // Scan
	FS  Kind = "FS"  // Filtered Scan
	AQG Kind = "AQG" // Automatic Query Generation
)

// Counts is the work performed by a strategy so far: documents retrieved
// from the database, documents rejected by the Filtered Scan classifier, and
// queries issued by AQG. The cost model charges tR per retrieval, tF per
// filtered document, and tQ per query.
type Counts struct {
	Retrieved int
	Filtered  int
	Queries   int
}

// Strategy streams the IDs of documents to process, in retrieval order.
type Strategy interface {
	// Next returns the next document to process; ok is false once the
	// strategy is exhausted (whole database scanned, or all queries spent).
	Next() (docID int, ok bool)
	// Kind identifies the strategy.
	Kind() Kind
	// Counts reports the work performed so far.
	Counts() Counts
}

// Fallible is a strategy whose pulls can fail — a flaky search interface or
// classifier service. A failed pull does not advance the stream: once the
// failure clears, the next pull resumes exactly where the stream left off.
// cost is extra cost-model time incurred by the pull (injected latency,
// failed-call overhead) beyond the per-document charges the executors
// already apply; it is reported on failures and successes alike.
type Fallible interface {
	Strategy
	NextFallible() (docID int, ok bool, cost float64, err error)
}

// Pull advances s one document through its fallible path when it has one,
// and through plain Next otherwise. Executors pull through this helper so
// any strategy — wrapped by a fault injector or not — is driven uniformly.
func Pull(s Strategy) (docID int, ok bool, cost float64, err error) {
	if f, isFallible := s.(Fallible); isFallible {
		return f.NextFallible()
	}
	id, ok := s.Next()
	return id, ok, 0, nil
}

// Peeker is a strategy that can reveal the documents it expects to hand out
// next without advancing the stream. Peeking performs no accountable work:
// counts, fault streams, and stream position are untouched, so executions
// with and without peeking stay bit-identical. The peek is a best-effort
// prediction used by the pipelined executor to start extraction early —
// inaccuracy wastes speculative work but never affects results.
type Peeker interface {
	Peek(k int) []int
}

// PeekAhead returns up to k upcoming document IDs from s when it supports
// peeking, and nil otherwise. The returned slice is owned by the strategy
// and valid only until its next method call.
func PeekAhead(s Strategy, k int) []int {
	if p, ok := s.(Peeker); ok && k > 0 {
		return p.Peek(k)
	}
	return nil
}

// Scan retrieves every document sequentially.
type Scan struct {
	n       int
	next    int
	counts  Counts
	peekBuf []int
}

// NewScan returns a Scan over a database of numDocs documents.
func NewScan(numDocs int) *Scan { return &Scan{n: numDocs} }

// Next implements Strategy.
func (s *Scan) Next() (int, bool) {
	if s.next >= s.n {
		return 0, false
	}
	id := s.next
	s.next++
	s.counts.Retrieved++
	return id, true
}

// Peek implements Peeker: the scan order is fixed, so the next k documents
// are simply the next k IDs.
func (s *Scan) Peek(k int) []int {
	s.peekBuf = s.peekBuf[:0]
	for id := s.next; id < s.n && id < s.next+k; id++ {
		s.peekBuf = append(s.peekBuf, id)
	}
	return s.peekBuf
}

// Kind implements Strategy.
func (s *Scan) Kind() Kind { return SC }

// Counts implements Strategy.
func (s *Scan) Counts() Counts { return s.counts }

// FilteredScan scans sequentially but hands out only documents the
// classifier accepts. Rejected documents are still retrieved (and charged)
// but not processed.
type FilteredScan struct {
	db     *corpus.DB
	c      classifier.Classifier
	next   int
	counts Counts

	// Peek memo: documents in [next, peekPos) have been classified ahead,
	// with the accepted IDs buffered in peekBuf. Peeking re-runs the
	// classifier read-only; it never touches next or counts.
	peekPos int
	peekBuf []int
}

// NewFilteredScan returns a Filtered Scan over db using c.
func NewFilteredScan(db *corpus.DB, c classifier.Classifier) (*FilteredScan, error) {
	if c == nil {
		return nil, fmt.Errorf("retrieval: filtered scan needs a classifier")
	}
	return &FilteredScan{db: db, c: c}, nil
}

// Next implements Strategy.
func (f *FilteredScan) Next() (int, bool) {
	for f.next < f.db.Size() {
		id := f.next
		f.next++
		f.counts.Retrieved++
		if f.c.Classify(f.db.Doc(id).Text) {
			return id, true
		}
		f.counts.Filtered++
	}
	return 0, false
}

// NextFallible implements Fallible. A classifier failure is surfaced before
// the scan position advances or any work is counted, so a retried pull
// re-classifies the same document.
func (f *FilteredScan) NextFallible() (int, bool, float64, error) {
	fc, fallible := f.c.(classifier.Fallible)
	var cost float64
	for f.next < f.db.Size() {
		id := f.next
		accept := false
		if fallible {
			a, c, err := fc.ClassifyFallible(f.db.Doc(id).Text)
			cost += c
			if err != nil {
				return 0, false, cost, err
			}
			accept = a
		} else {
			accept = f.c.Classify(f.db.Doc(id).Text)
		}
		f.next++
		f.counts.Retrieved++
		if accept {
			return id, true, cost, nil
		}
		f.counts.Filtered++
	}
	return 0, false, cost, nil
}

// Peek implements Peeker: it classifies ahead of the scan position (through
// the plain, fault-free classifier path) and returns up to k upcoming
// accepted documents. Results already consumed by Next are dropped from the
// memo; positions classified ahead are never re-classified.
func (f *FilteredScan) Peek(k int) []int {
	drop := 0
	for drop < len(f.peekBuf) && f.peekBuf[drop] < f.next {
		drop++
	}
	if drop > 0 {
		f.peekBuf = append(f.peekBuf[:0], f.peekBuf[drop:]...)
	}
	if f.peekPos < f.next {
		f.peekPos = f.next
	}
	for len(f.peekBuf) < k && f.peekPos < f.db.Size() {
		id := f.peekPos
		f.peekPos++
		if f.c.Classify(f.db.Doc(id).Text) {
			f.peekBuf = append(f.peekBuf, id)
		}
	}
	if len(f.peekBuf) > k {
		return f.peekBuf[:k]
	}
	return f.peekBuf
}

// Kind implements Strategy.
func (f *FilteredScan) Kind() Kind { return FS }

// Counts implements Strategy.
func (f *FilteredScan) Counts() Counts { return f.counts }

// AQGStrategy issues learned keyword queries against the database's search
// interface and streams the unseen matching documents. Its reach is bounded
// by the query set and the interface's top-k cap.
type AQGStrategy struct {
	ix      *index.Index
	queries []qxtract.Query
	qNext   int
	buffer  []int
	seen    map[int]bool
	counts  Counts
}

// NewAQG returns an AQG strategy issuing queries against ix in order.
func NewAQG(ix *index.Index, queries []qxtract.Query) (*AQGStrategy, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("retrieval: AQG needs at least one query")
	}
	return &AQGStrategy{ix: ix, queries: queries, seen: map[int]bool{}}, nil
}

// Next implements Strategy.
func (a *AQGStrategy) Next() (int, bool) {
	for {
		if len(a.buffer) > 0 {
			id := a.buffer[0]
			a.buffer = a.buffer[1:]
			a.counts.Retrieved++
			return id, true
		}
		if a.qNext >= len(a.queries) {
			return 0, false
		}
		q := a.queries[a.qNext]
		a.qNext++
		a.counts.Queries++
		for _, id := range a.ix.Search(q.IndexQuery()) {
			if !a.seen[id] {
				a.seen[id] = true
				a.buffer = append(a.buffer, id)
			}
		}
	}
}

// Peek implements Peeker: it reveals the buffered results of already-issued
// queries. No new queries are issued (that would be accountable work), so
// the peek may return fewer than k documents.
func (a *AQGStrategy) Peek(k int) []int {
	if len(a.buffer) > k {
		return a.buffer[:k]
	}
	return a.buffer
}

// Kind implements Strategy.
func (a *AQGStrategy) Kind() Kind { return AQG }

// Counts implements Strategy.
func (a *AQGStrategy) Counts() Counts { return a.counts }
