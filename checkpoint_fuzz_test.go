package joinopt

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzCheckpointUnmarshal feeds arbitrary bytes — seeded with a valid
// encoding and targeted corruptions of it — to the checkpoint decoder. The
// decoder must never panic; every rejection must be a typed
// *CheckpointDecodeError; and anything it accepts must re-encode cleanly
// (no silent misparse into an un-marshalable state).
func FuzzCheckpointUnmarshal(f *testing.F) {
	valid, err := json.Marshal(goldenCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":1,"crc":0,"checkpoint":{}}`))
	f.Add([]byte(`{"version":2,"crc":0,"checkpoint":{}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	for i := 0; i < len(valid); i += 97 {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x08
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			var de *CheckpointDecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error %T (%v) is not a *CheckpointDecodeError", err, err)
			}
			if ck != nil {
				t.Fatal("failed decode returned a checkpoint")
			}
			return
		}
		if ck.ck == nil {
			t.Fatal("successful decode left a nil checkpoint")
		}
		if _, err := json.Marshal(ck); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
	})
}
