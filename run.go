package joinopt

import (
	"context"
	"fmt"

	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/workload"
)

// RunOption configures one Run call. Options override the task-level
// defaults (Task.Faults, Task.Retry, Task.Deadline, Task.Workers) for that
// call only.
type RunOption func(*runConfig)

type runConfig struct {
	plan    *Plan
	stop    StopCondition
	trace   *Trace
	metrics *Metrics
	ck      *AdaptiveCheckpoint
	ckSink  func(*AdaptiveCheckpoint)

	faults      *FaultProfile
	faultsSet   bool
	retry       *RetryPolicy
	deadline    *float64
	workers     *int
	execWorkers *int
	cacheBytes  *int64
	shards      *int

	qstop func(QueryProgress) bool
}

// WithPlan pins the run to a specific execution plan instead of letting the
// adaptive optimizer choose one: the plan runs to exhaustion (or until a
// WithStop condition, the deadline, or context cancellation stops it), and
// the requirement passed to Run is ignored.
func WithPlan(plan Plan) RunOption {
	return func(c *runConfig) { c.plan = &plan }
}

// WithStop installs a stop condition on a fixed-plan run (see WithPlan); it
// is inspected after every executor step. Adaptive runs ignore it — their
// stopping policy is the optimizer's.
func WithStop(stop StopCondition) RunOption {
	return func(c *runConfig) { c.stop = stop }
}

// WithQueryStop installs a stop condition on an n-ary query run; it is
// inspected after every executor step. Two-relation runs use WithStop.
func WithQueryStop(stop func(QueryProgress) bool) RunOption {
	return func(c *runConfig) { c.qstop = stop }
}

// WithFaults overrides the task's fault profile for this run (nil disables
// injection).
func WithFaults(p *FaultProfile) RunOption {
	return func(c *runConfig) { c.faults = p; c.faultsSet = true }
}

// WithRetries overrides the task's retry policy for this run.
func WithRetries(p RetryPolicy) RunOption {
	return func(c *runConfig) { c.retry = &p }
}

// WithDeadline overrides the task's cost-model deadline for this run
// (0 = none). A deadline-stopped Run returns its partial result together
// with an error wrapping ErrDeadline.
func WithDeadline(d float64) RunOption {
	return func(c *runConfig) { c.deadline = &d }
}

// WithWorkers overrides the task's optimizer worker bound for this run.
func WithWorkers(n int) RunOption {
	return func(c *runConfig) { c.workers = &n }
}

// WithExecWorkers overrides the task's pipelined execution worker count for
// this run (0 or 1 = sequential). Any setting produces bit-identical
// results, accounting, and traces; workers only overlap extraction
// wall-clock time.
func WithExecWorkers(n int) RunOption {
	return func(c *runConfig) { c.execWorkers = &n }
}

// WithShards overrides the task's corpus shard count for this run (0 or 1 =
// unsharded). The run partitions each database into that many deterministic
// shards and executes as a scatter-gather over per-shard pipelined engines,
// each owning a slice of the extraction cache. Any shard count produces
// bit-identical tuples, counters, and traces; sharding only overlaps
// wall-clock work, which the optimizer models with the measured
// shard-scaling curve.
func WithShards(n int) RunOption {
	return func(c *runConfig) { c.shards = &n }
}

// WithExtractionCache overrides the task's extraction-cache capacity in
// bytes for this run (0 disables caching). The cache is shared across the
// run's pilot, abandoned, and final executions — and across later runs at
// the same capacity — so re-extracting a cached document at the same θ is
// charged zero extraction time.
func WithExtractionCache(bytes int64) RunOption {
	return func(c *runConfig) { c.cacheBytes = &bytes }
}

// WithTracer attaches a trace to the run: executors, fault injectors,
// retrieval strategies, and the adaptive optimizer emit structured events to
// it. A nil trace is free (the instrumentation short-circuits).
func WithTracer(tr *Trace) RunOption {
	return func(c *runConfig) { c.trace = tr }
}

// WithMetrics attaches a metrics registry to the run: live counters mirror
// the execution as it progresses, and the joinopt_run_* gauges report the
// final Result exactly when the run completes.
func WithMetrics(m *Metrics) RunOption {
	return func(c *runConfig) { c.metrics = m }
}

// WithCheckpoint resumes an interrupted adaptive run from its checkpoint
// instead of starting a fresh one (the pilot is not re-run). Ignored on
// fixed-plan runs.
func WithCheckpoint(ck *AdaptiveCheckpoint) RunOption {
	return func(c *runConfig) { c.ck = ck }
}

// WithCheckpointSink streams each resumable checkpoint the adaptive protocol
// produces — at plan choice, commit, switch, and finish-phase transitions —
// to sink as the run progresses, so a durable store can persist them and a
// crash can resume from the most recent one (see WithCheckpoint). The sink
// runs synchronously on the run's goroutine and must treat the checkpoint as
// read-only; serialize it (json.Marshal) before handing it elsewhere.
// Ignored on fixed-plan runs.
func WithCheckpointSink(sink func(*AdaptiveCheckpoint)) RunOption {
	return func(c *runConfig) { c.ckSink = sink }
}

// RunResult is the outcome of a Run: the executed final outcome, the plan
// decision sequence (a single entry on fixed-plan runs), the total billed
// cost-model time including pilot and abandoned work, any non-fatal
// checkpoint optimization failures, and — when the run was interrupted by
// context cancellation — the checkpoint to resume it from.
type RunResult struct {
	Outcome        *Outcome
	Plans          []Plan
	TotalTime      float64
	CheckpointErrs []string
	Checkpoint     *AdaptiveCheckpoint

	// Query is set instead of Outcome on n-ary query runs: the chosen plan
	// and the executed per-relation statistics.
	Query *QueryOutcome
}

// configure merges the task defaults with the per-run options and pushes the
// result into a private per-run clone of the workload, so concurrent Run
// calls never observe each other's configuration. It returns the merged
// config and the clone the run must execute against.
func (t *Task) configure(opts []RunOption) (*runConfig, *workload.Workload) {
	cfg := &runConfig{}
	for _, o := range opts {
		o(cfg)
	}
	var fp *faults.Profile
	switch {
	case cfg.faultsSet && cfg.faults != nil:
		fp = cfg.faults.p
	case !cfg.faultsSet && t.Faults != nil:
		fp = t.Faults.p
	}
	retry := t.Retry
	if cfg.retry != nil {
		retry = *cfg.retry
	}
	deadline := t.Deadline
	if cfg.deadline != nil {
		deadline = *cfg.deadline
	}
	if cfg.workers == nil {
		cfg.workers = &t.Workers
	}
	execWorkers := t.ExecWorkers
	if cfg.execWorkers != nil {
		execWorkers = *cfg.execWorkers
	}
	cacheBytes := t.ExtractCacheBytes
	if cfg.cacheBytes != nil {
		cacheBytes = *cfg.cacheBytes
	}
	shards := t.Shards
	if cfg.shards != nil {
		shards = *cfg.shards
	}
	w := t.w.Clone()
	w.ExecWorkers = execWorkers
	if shards >= 2 {
		// Sharded runs split the cache budget into per-shard slices; the
		// single shared cache stays detached so the two layouts never mix.
		w.Shards = shards
		w.ShardSet = t.shardSet(cacheBytes, shards)
	} else {
		w.ExtractCache = t.extractCache(cacheBytes)
	}
	w.Faults = fp
	w.Retry = join.RetryPolicy{
		MaxRetries:    retry.MaxRetries,
		BaseDelay:     retry.BaseDelay,
		MaxDelay:      retry.MaxDelay,
		FailureBudget: retry.FailureBudget,
	}
	w.Deadline = deadline
	w.Trace = cfg.trace
	w.Metrics = cfg.metrics
	return cfg, w
}

// Run is the task's single execution entry point. By default it runs the
// paper's §VI adaptive protocol against req: scan a pilot window, estimate
// the database statistics, choose the fastest plan predicted to meet the
// requirement, execute it, and re-optimize at checkpoints. WithPlan pins a
// specific plan instead (req is then ignored), and WithCheckpoint resumes an
// interrupted adaptive run. Context cancellation stops the run cooperatively
// at the next executor step, returning the partial result (with a resumable
// Checkpoint on adaptive runs) together with ctx.Err(); a deadline-stopped
// run returns its result together with an error wrapping ErrDeadline.
//
// On an n-ary query task (NewQuery over three or more relations) Run
// instead plans the query with the DP join-tree enumerator against
// perfect-knowledge measured parameters and executes the chosen tree: the
// result's Query field carries the plan and per-relation statistics, and
// WithQueryStop, WithWorkers, WithExecWorkers, WithExtractionCache,
// WithDeadline, and WithTracer apply; the two-relation-only options
// (WithPlan, WithStop, fault injection, retries, checkpoints, metrics)
// return a descriptive error.
//
// A Task is safe for concurrent Run calls: each run executes against a
// private view of the workload, sharing only the immutable machinery, the
// internally synchronized extraction memo, and the shared extraction cache.
// Give each concurrent run its own Trace (a shared Trace interleaves events
// and its clock follows whichever executor was constructed last); a shared
// Metrics registry is safe but accumulates all runs into the same series.
// The Task's configuration fields (Workers, Faults, Retry, Deadline,
// ExecWorkers, ExtractCacheBytes, Shards, MergeCost) must not be mutated
// while runs are in flight — configure them up front or per call via
// options.
func (t *Task) Run(ctx context.Context, req Requirement, opts ...RunOption) (*RunResult, error) {
	if t.mw != nil {
		return t.runQuery(ctx, req, opts)
	}
	cfg, w := t.configure(opts)
	if cfg.plan != nil {
		return t.runFixed(ctx, w, cfg)
	}
	return t.runAdaptive(ctx, w, req, cfg)
}

// runFixed executes one pinned plan.
func (t *Task) runFixed(ctx context.Context, w *workload.Workload, cfg *runConfig) (*RunResult, error) {
	plan := *cfg.plan
	if cfg.trace.Enabled() {
		cfg.trace.EmitAt(0, obs.KindRunStart, 0, map[string]any{"mode": "fixed", "plan": plan.String()})
	}
	exec, err := w.NewExecutor(plan.spec())
	if err != nil {
		return nil, err
	}
	var sf join.StopFunc
	if cfg.stop != nil {
		sf = func(st *join.State) bool {
			return cfg.stop(Progress{
				GoodTuples: st.GoodPairs, BadTuples: st.BadPairs,
				DocsProcessed: st.DocsProcessed, DocsRetrieved: st.DocsRetrieved,
				Queries: st.Queries, Time: st.Time,
			})
		}
	}
	st, err := join.RunCtx(ctx, exec, sf)
	out := outcomeOf(plan, st)
	res := &RunResult{Outcome: out, Plans: []Plan{plan}, TotalTime: st.Time}
	t.sealRun(cfg, res, "fixed")
	if err == nil && st.DeadlineHit {
		err = fmt.Errorf("joinopt: %s: %w", plan, ErrDeadline)
	}
	return res, err
}

// runAdaptive executes (or resumes) the adaptive protocol.
func (t *Task) runAdaptive(ctx context.Context, w *workload.Workload, req Requirement, cfg *runConfig) (*RunResult, error) {
	mode := "adaptive"
	if cfg.ck != nil {
		mode = "resume"
	}
	if cfg.trace.Enabled() {
		cfg.trace.EmitAt(0, obs.KindRunStart, 0, map[string]any{"mode": mode, "tau_g": req.TauG, "tau_b": req.TauB})
	}
	env, err := w.NewEnv(Knobs)
	if err != nil {
		return nil, err
	}
	oopts := optimizer.Options{ChooseWorkers: *cfg.workers}
	if sink := cfg.ckSink; sink != nil {
		oopts.Persist = func(c *optimizer.Checkpoint) { sink(&AdaptiveCheckpoint{ck: c}) }
	}
	var ores *optimizer.Result
	if cfg.ck != nil {
		ores, err = optimizer.ResumeAdaptiveCtx(ctx, env, optimizer.Requirement(req), oopts, cfg.ck.ck)
	} else {
		ores, err = optimizer.RunAdaptiveCtx(ctx, env, optimizer.Requirement(req), oopts)
	}
	if ores == nil {
		return nil, err
	}
	res := &RunResult{TotalTime: ores.TotalTime}
	for _, d := range ores.Decisions {
		res.Plans = append(res.Plans, planFromSpec(d.Chosen.Plan))
	}
	for _, ce := range ores.CheckpointErrs {
		res.CheckpointErrs = append(res.CheckpointErrs, ce.Error())
	}
	if ores.Checkpoint != nil {
		res.Checkpoint = &AdaptiveCheckpoint{ck: ores.Checkpoint}
	}
	if ores.Final != nil && len(res.Plans) > 0 {
		res.Outcome = outcomeOf(res.Plans[len(res.Plans)-1], ores.Final)
	}
	t.sealRun(cfg, res, mode)
	if err == nil && res.Outcome != nil && res.Outcome.DeadlineHit {
		err = fmt.Errorf("joinopt: %s: %w", res.Outcome.Plan, ErrDeadline)
	}
	return res, err
}

// sealRun publishes the run-level gauges and the run.end trace event from a
// completed run's result.
func (t *Task) sealRun(cfg *runConfig, res *RunResult, mode string) {
	switches := len(res.Plans) - 1
	if switches < 0 {
		switches = 0
	}
	if o := res.Outcome; o != nil {
		obs.PublishRun(cfg.metrics, o.DocsProcessed, o.DocsFailed, o.RetriesSpent, o.Queries,
			o.GoodTuples, o.BadTuples, o.Time, res.TotalTime, o.Degraded, o.DeadlineHit, switches)
	}
	if cfg.trace.Enabled() {
		attrs := map[string]any{"mode": mode, "total_time": res.TotalTime, "checkpoint_errs": len(res.CheckpointErrs)}
		if o := res.Outcome; o != nil {
			attrs["plan"] = o.Plan.String()
			attrs["good"] = o.GoodTuples
			attrs["bad"] = o.BadTuples
			attrs["time"] = o.Time
			attrs["degraded"] = o.Degraded
			attrs["deadline_hit"] = o.DeadlineHit
		}
		cfg.trace.EmitAt(res.TotalTime, obs.KindRunEnd, 0, attrs)
	}
}
