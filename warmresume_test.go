package joinopt_test

import (
	"context"
	"errors"
	"testing"

	"joinopt"
	"joinopt/internal/obs"
)

// cancelTracer cancels a run once trigger post-plan-chosen doc.processed
// events have been seen — a deterministic mid-execution interruption point.
type cancelTracer struct {
	cancel  context.CancelFunc
	armed   bool
	docs    int
	trigger int
}

func (c *cancelTracer) Emit(e obs.Event) {
	if e.Kind == obs.KindPlanChosen {
		c.armed = true
	}
	if c.armed && e.Kind == obs.KindDocProcessed {
		c.docs++
		if c.docs == c.trigger {
			c.cancel()
		}
	}
}

// TestResumeAgainstWarmCacheMatchesUninterrupted pins the warmth-invariant
// replay accounting: a mid-execution checkpoint resumed against the shared
// extraction cache — now warm with every entry the interrupted prefix put —
// must replay cleanly (the replay hits where the original missed, billing a
// different Time but the same Time+ΣCacheSaved invariant) and finish with
// the exact outcome and total time of an uninterrupted run on a cold task.
func TestResumeAgainstWarmCacheMatchesUninterrupted(t *testing.T) {
	params := joinopt.WorkloadParams{NumDocs: 400, Seed: 7}
	req := joinopt.Requirement{TauG: 8, TauB: 200}

	fresh, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	fresh.ExtractCacheBytes = 32 << 20
	base, err := fresh.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	tk, err := joinopt.NewTaskPair(params, "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	tk.ExtractCacheBytes = 32 << 20

	ctx, cancel := context.WithCancel(context.Background())
	ct := &cancelTracer{cancel: cancel, trigger: 20}
	interrupted, err := tk.Run(ctx, req, joinopt.WithTracer(joinopt.NewTrace(ct)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if interrupted.Checkpoint == nil {
		t.Fatal("interrupted run carries no checkpoint")
	}
	if s := tk.ExtractionCacheStats(); s.Entries == 0 {
		t.Fatal("interrupted prefix left the cache cold; the test needs warmth")
	}

	resumed, err := tk.Run(context.Background(), req, joinopt.WithCheckpoint(interrupted.Checkpoint))
	if err != nil {
		t.Fatalf("resume against warm cache failed: %v", err)
	}
	if resumed.Outcome.GoodTuples != base.Outcome.GoodTuples ||
		resumed.Outcome.BadTuples != base.Outcome.BadTuples ||
		resumed.Outcome.Time != base.Outcome.Time ||
		resumed.TotalTime != base.TotalTime {
		t.Errorf("resumed run diverged from uninterrupted: good %d/%d bad %d/%d time %v/%v total %v/%v",
			resumed.Outcome.GoodTuples, base.Outcome.GoodTuples,
			resumed.Outcome.BadTuples, base.Outcome.BadTuples,
			resumed.Outcome.Time, base.Outcome.Time,
			resumed.TotalTime, base.TotalTime)
	}
}
