// Observability overhead benchmarks (`make bench-overhead`): the same full
// executor run with observability detached (the nil fast path every
// uninstrumented caller takes), with a ring trace + metrics registry
// attached, and with an NDJSON stream. The nil-path timing must stay within
// 2% of the pre-instrumentation BenchmarkIDJNFullScan baseline — the nil
// checks and the Enabled() guards are all the disabled path pays.
package joinopt_test

import (
	"io"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// benchInstrumentedRun executes one full IDJN Scan/Scan run through
// workload.NewExecutor — the construction path that attaches the workload's
// trace and metrics to the executor state.
func benchInstrumentedRun(b *testing.B, w *workload.Workload) int {
	b.Helper()
	e, err := w.NewExecutor(optimizer.PlanSpec{
		JN:    optimizer.IDJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := join.Run(e, nil)
	if err != nil {
		b.Fatal(err)
	}
	return st.GoodPairs
}

func BenchmarkIDJNFullScanNilObs(b *testing.B) {
	w := benchWorkload(b)
	w.Trace, w.Metrics = nil, nil
	b.ResetTimer()
	var good float64
	for i := 0; i < b.N; i++ {
		good = float64(benchInstrumentedRun(b, w))
	}
	b.ReportMetric(good, "good-pairs")
}

func BenchmarkIDJNFullScanRingTraced(b *testing.B) {
	w := benchWorkload(b)
	w.Trace, w.Metrics = obs.New(obs.NewRing(obs.DefaultRingCapacity)), obs.NewRegistry()
	defer func() { w.Trace, w.Metrics = nil, nil }()
	b.ResetTimer()
	var good float64
	for i := 0; i < b.N; i++ {
		good = float64(benchInstrumentedRun(b, w))
	}
	b.ReportMetric(good, "good-pairs")
}

func BenchmarkIDJNFullScanNDJSON(b *testing.B) {
	w := benchWorkload(b)
	w.Trace, w.Metrics = obs.New(obs.NewNDJSON(io.Discard)), obs.NewRegistry()
	defer func() { w.Trace, w.Metrics = nil, nil }()
	b.ResetTimer()
	var good float64
	for i := 0; i < b.N; i++ {
		good = float64(benchInstrumentedRun(b, w))
	}
	b.ReportMetric(good, "good-pairs")
}
