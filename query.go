package joinopt

import (
	"context"
	"fmt"

	"joinopt/internal/join"
	"joinopt/internal/obs"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/querygraph"
	"joinopt/internal/retrieval"
	"joinopt/internal/workload"
)

// MaxQueryRelations is the largest number of relations a Query may join.
const MaxQueryRelations = querygraph.MaxRelations

// Query declares a multi-relation extraction join: which standard tasks
// ("HQ", "EX", "MG" — repeats allowed, each occurrence gets its own
// database) to extract, and which pairs share their join attribute. All
// relations join on the shared first attribute, so Joins only shapes the
// query graph the optimizer enumerates join trees over; an empty Joins
// defaults to the chain R1—R2—…—Rk. The graph must be connected and may
// name 2..MaxQueryRelations relations.
type Query struct {
	Relations []string
	Joins     [][2]int
}

// NewQuery builds a task from a declarative query. A two-relation query
// over distinct tasks yields a binary task — the full plan space (IDJN,
// OIJN, ZGJN; SC/FS/AQG), the adaptive §VI protocol, fault injection, and
// every two-relation method apply, exactly as with NewTaskPair. Queries
// over three or more relations (or a repeated pair) yield an n-ary task:
// Run plans them with the DP join-tree enumerator and executes the chosen
// tree; the two-relation-only methods report a descriptive error.
func NewQuery(p WorkloadParams, q Query) (*Task, error) {
	// Validate the query shape up front (arity bounds, predicate bounds,
	// connectivity) so both constructions reject the same specs.
	if _, err := (querygraph.Spec{Relations: q.Relations, Joins: q.Joins}).Graph(); err != nil {
		return nil, err
	}
	if len(q.Relations) == 2 && q.Relations[0] != q.Relations[1] {
		return NewTaskPair(p, q.Relations[0], q.Relations[1])
	}
	if p.NumDocs == 0 {
		p.NumDocs = workload.DefaultParams.NumDocs
	}
	if p.Seed == 0 {
		p.Seed = workload.DefaultParams.Seed
	}
	mw, err := workload.Multi(workload.Params{NumDocs: p.NumDocs, Seed: p.Seed, TopK: p.TopK}, q.Relations)
	if err != nil {
		return nil, err
	}
	joins := make([][2]int, len(q.Joins))
	copy(joins, q.Joins)
	return &Task{mw: mw, joins: joins}, nil
}

// QueryLeaf is one relation's configuration in a chosen n-ary plan: its
// knob setting, retrieval strategy, and effort budget (documents for
// SC/FS, queries for AQG).
type QueryLeaf struct {
	Relation string
	Theta    float64
	Strategy Strategy
	Effort   int
}

// QueryPlan is the optimizer's chosen n-ary plan: the join tree (e.g.
// "((R1⋈R2)⋈R3)"), the per-relation configurations, and the model's
// predictions at the chosen efforts.
type QueryPlan struct {
	Tree   string
	Leaves []QueryLeaf

	EstimatedGood float64
	EstimatedBad  float64
	EstimatedTime float64

	// EstimatedMergeTuples is Σ over internal tree nodes of the expected
	// intermediate cardinality — what the merge cost charges.
	EstimatedMergeTuples float64
}

// String renders the plan compactly.
func (qp QueryPlan) String() string {
	s := qp.Tree
	for i, l := range qp.Leaves {
		if i == 0 {
			s += " "
		} else {
			s += ","
		}
		s += fmt.Sprintf("%s⟨θ=%.1f,%s,e=%d⟩", l.Relation, l.Theta, l.Strategy, l.Effort)
	}
	return s
}

// QueryOutcome summarizes an executed n-ary query.
type QueryOutcome struct {
	Plan QueryPlan

	GoodTuples int
	BadTuples  int

	// Time is the cost-model execution time; MergeTime is the merge-cost
	// portion of it (Task.MergeCost per intermediate tuple).
	Time      float64
	MergeTime float64

	// CacheSaved is the per-relation extraction time the shared cache made
	// free; Time + ΣCacheSaved is invariant under cache warmth.
	CacheSaved []float64

	// Work counters per relation, indexed in query order.
	DocsProcessed []int
	DocsRetrieved []int
	DocsFiltered  []int
	Queries       []int

	// NodeTuples counts the tuples materialized at each internal node of
	// the executed join tree in post-order (root last); the root entry
	// equals GoodTuples+BadTuples.
	NodeTuples []int

	DeadlineHit bool
}

// QueryProgress is the observable state of a running n-ary execution.
type QueryProgress struct {
	GoodTuples, BadTuples int
	DocsProcessed         []int
	DocsRetrieved         []int
	Queries               []int
	Time                  float64
}

// Arity returns the number of relations the task joins.
func (t *Task) Arity() int {
	if t.mw != nil {
		return len(t.mw.DBs)
	}
	return 2
}

// RelationNames names the extracted relations in query order.
func (t *Task) RelationNames() []string {
	if t.mw != nil {
		golds := t.mw.Golds()
		out := make([]string, len(golds))
		for i, g := range golds {
			out[i] = g.Schema.String()
		}
		return out
	}
	return []string{
		t.w.DB[0].Gold(t.w.Task[0]).Schema.String(),
		t.w.DB[1].Gold(t.w.Task[1]).Schema.String(),
	}
}

// Sizes returns the document counts of the task's databases in query order.
func (t *Task) Sizes() []int {
	if t.mw != nil {
		out := make([]int, len(t.mw.DBs))
		for i, db := range t.mw.DBs {
			out[i] = db.Size()
		}
		return out
	}
	return []int{t.w.DB[0].Size(), t.w.DB[1].Size()}
}

// binaryOnly guards the two-relation-only surface on n-ary tasks.
func (t *Task) binaryOnly(op string) error {
	if t.w == nil {
		return fmt.Errorf("joinopt: %s applies to two-relation tasks; this query joins %d relations", op, t.Arity())
	}
	return nil
}

// naryInputs assembles the n-ary optimizer inputs from the task's measured
// workload parameters and knobs.
func (t *Task) naryInputs(workers, execWorkers, shards int) (*querygraph.Graph, *optimizer.NaryInputs, error) {
	g, err := t.mw.Graph(t.joins)
	if err != nil {
		return nil, nil, err
	}
	in, err := t.mw.TrueNaryInputs(Knobs)
	if err != nil {
		return nil, nil, err
	}
	in.Workers = workers
	in.ExecWorkers = execWorkers
	in.Shards = shards
	in.TJ = t.MergeCost
	return g, in, nil
}

func queryPlanOf(names []string, ev optimizer.NaryEval) QueryPlan {
	qp := QueryPlan{
		Tree:                 ev.Tree.String(),
		EstimatedGood:        ev.Quality.Good,
		EstimatedBad:         ev.Quality.Bad,
		EstimatedTime:        ev.Time,
		EstimatedMergeTuples: ev.MergeTuples,
	}
	for _, l := range ev.Leaves {
		qp.Leaves = append(qp.Leaves, QueryLeaf{
			Relation: names[l.Rel],
			Theta:    l.Theta,
			Strategy: Strategy(l.X),
			Effort:   l.Effort,
		})
	}
	return qp
}

func queryOutcomeOf(qp QueryPlan, st *join.NaryState, deadlineHit bool) *QueryOutcome {
	return &QueryOutcome{
		Plan:          qp,
		GoodTuples:    st.GoodTuples,
		BadTuples:     st.BadTuples,
		Time:          st.Time,
		MergeTime:     st.MergeTime,
		CacheSaved:    st.CacheSaved,
		DocsProcessed: st.DocsProcessed,
		DocsRetrieved: st.DocsRetrieved,
		DocsFiltered:  st.DocsFiltered,
		Queries:       st.Queries,
		NodeTuples:    st.NodeTuples,
		DeadlineHit:   deadlineHit,
	}
}

// OptimizeQuery picks the fastest plan predicted to meet the requirement
// using perfect-knowledge parameters measured on the task's databases. On a
// two-relation task it runs the legacy binary optimizer over its full plan
// space and reports the choice in query-plan form — the binary join is a
// derived special case, not a separate code path the caller must select.
func (t *Task) OptimizeQuery(req Requirement) (QueryPlan, error) {
	if t.mw == nil {
		in, err := t.w.TrueInputs(Knobs)
		if err != nil {
			return QueryPlan{}, err
		}
		in.Workers = t.Workers
		best, _, err := optimizer.Choose(optimizer.Enumerate(Knobs), in, optimizer.Requirement(req))
		if err != nil {
			return QueryPlan{}, err
		}
		names := t.RelationNames()
		return QueryPlan{
			Tree: "(R1⋈R2)",
			Leaves: []QueryLeaf{
				{Relation: names[0], Theta: best.Plan.Theta[0], Strategy: Strategy(best.Plan.X[0]), Effort: best.Effort[0]},
				{Relation: names[1], Theta: best.Plan.Theta[1], Strategy: Strategy(best.Plan.X[1]), Effort: best.Effort[1]},
			},
			EstimatedGood: best.Quality.Good,
			EstimatedBad:  best.Quality.Bad,
			EstimatedTime: best.Time,
		}, nil
	}
	g, in, err := t.naryInputs(t.Workers, t.ExecWorkers, t.Shards)
	if err != nil {
		return QueryPlan{}, err
	}
	best, _, err := optimizer.ChooseNary(g, in, optimizer.Requirement(req))
	if err != nil {
		return QueryPlan{}, err
	}
	return queryPlanOf(t.RelationNames(), best), nil
}

// runQuery plans and executes an n-ary query: measured parameters feed the
// DP join-tree enumerator, and the chosen plan runs on the tree executor
// with the leaf efforts as caps.
func (t *Task) runQuery(ctx context.Context, req Requirement, opts []RunOption) (*RunResult, error) {
	cfg := &runConfig{}
	for _, o := range opts {
		o(cfg)
	}
	switch {
	case cfg.plan != nil:
		return nil, fmt.Errorf("joinopt: WithPlan pins two-relation plans; n-ary queries are planned by the query optimizer")
	case cfg.stop != nil:
		return nil, fmt.Errorf("joinopt: WithStop applies to two-relation runs; use WithQueryStop on n-ary queries")
	case cfg.ck != nil || cfg.ckSink != nil:
		return nil, fmt.Errorf("joinopt: adaptive checkpoints apply to two-relation runs only")
	case cfg.retry != nil:
		return nil, fmt.Errorf("joinopt: retry policies apply to two-relation runs only")
	case cfg.metrics != nil:
		return nil, fmt.Errorf("joinopt: metrics instrumentation covers two-relation runs only")
	}
	if (cfg.faultsSet && cfg.faults != nil) || (!cfg.faultsSet && t.Faults != nil) {
		return nil, fmt.Errorf("joinopt: fault injection applies to two-relation runs only")
	}
	workers := t.Workers
	if cfg.workers != nil {
		workers = *cfg.workers
	}
	execWorkers := t.ExecWorkers
	if cfg.execWorkers != nil {
		execWorkers = *cfg.execWorkers
	}
	cacheBytes := t.ExtractCacheBytes
	if cfg.cacheBytes != nil {
		cacheBytes = *cfg.cacheBytes
	}
	shards := t.Shards
	if cfg.shards != nil {
		shards = *cfg.shards
	}
	deadline := t.Deadline
	if cfg.deadline != nil {
		deadline = *cfg.deadline
	}

	if cfg.trace.Enabled() {
		cfg.trace.EmitAt(0, obs.KindRunStart, 0, map[string]any{
			"mode": "query", "relations": t.Arity(), "tau_g": req.TauG, "tau_b": req.TauB,
		})
	}
	g, in, err := t.naryInputs(workers, execWorkers, shards)
	if err != nil {
		return nil, err
	}
	best, _, err := optimizer.ChooseNary(g, in, optimizer.Requirement(req))
	if err != nil {
		return nil, err
	}
	qp := queryPlanOf(t.RelationNames(), best)
	if cfg.trace.Enabled() {
		cfg.trace.EmitAt(0, obs.KindPlanChosen, 0, map[string]any{
			"plan": qp.String(), "est_good": qp.EstimatedGood, "est_bad": qp.EstimatedBad, "est_time": qp.EstimatedTime,
		})
	}
	var cache *pipeline.Cache
	set := t.shardSet(cacheBytes, shards)
	if set == nil {
		cache = t.extractCache(cacheBytes)
	}
	exec, err := t.mw.NewNaryExecutor(best, in.TJ, execWorkers, cache, set)
	if err != nil {
		return nil, err
	}
	st, deadlineHit, err := t.runNaryExec(ctx, exec, deadline, cfg.qstop)
	qo := queryOutcomeOf(qp, st, deadlineHit)
	res := &RunResult{Query: qo, TotalTime: st.Time}
	if cfg.trace.Enabled() {
		cfg.trace.EmitAt(res.TotalTime, obs.KindRunEnd, 0, map[string]any{
			"mode": "query", "plan": qp.Tree, "good": qo.GoodTuples, "bad": qo.BadTuples,
			"time": qo.Time, "total_time": res.TotalTime, "deadline_hit": qo.DeadlineHit,
		})
	}
	if err == nil && deadlineHit {
		err = fmt.Errorf("joinopt: %s: %w", qp.Tree, ErrDeadline)
	}
	return res, err
}

// runNaryExec drives a tree executor under a context, a cost-model
// deadline, and an optional stop condition.
func (t *Task) runNaryExec(ctx context.Context, exec *join.NaryExec, deadline float64, qstop func(QueryProgress) bool) (*join.NaryState, bool, error) {
	deadlineHit := false
	st, err := join.RunNary(exec, func(s *join.NaryState) bool {
		if ctx.Err() != nil {
			return true
		}
		if deadline > 0 && s.Time >= deadline {
			deadlineHit = true
			return true
		}
		return qstop != nil && qstop(QueryProgress{
			GoodTuples: s.GoodTuples, BadTuples: s.BadTuples,
			DocsProcessed: s.DocsProcessed, DocsRetrieved: s.DocsRetrieved,
			Queries: s.Queries, Time: s.Time,
		})
	})
	if err == nil {
		err = ctx.Err()
	}
	return st, deadlineHit, err
}

// ExecuteQuery runs an n-ary query at pinned per-relation knob settings —
// full scans of every database joined along the left-deep chain (the
// output composition is tree-independent), with no optimizer in the loop.
// It is the n-ary analogue of a fixed-plan Run; stop may be nil.
func (t *Task) ExecuteQuery(thetas []float64, stop func(QueryProgress) bool) (*QueryOutcome, error) {
	if t.mw == nil {
		return nil, fmt.Errorf("joinopt: ExecuteQuery applies to n-ary query tasks; pin two-relation plans with Run(WithPlan)")
	}
	n := len(t.mw.DBs)
	if len(thetas) != n {
		return nil, fmt.Errorf("joinopt: query joins %d relations but %d θ settings given", n, len(thetas))
	}
	node := &optimizer.NaryNode{Set: 1, Rel: 0}
	for i := 1; i < n; i++ {
		node = &optimizer.NaryNode{
			Set: node.Set | 1<<i, Rel: -1,
			Left: node, Right: &optimizer.NaryNode{Set: 1 << i, Rel: i},
		}
	}
	ev := optimizer.NaryEval{Tree: node, Feasible: true}
	for i := 0; i < n; i++ {
		size := t.mw.DBs[i].Size()
		ev.Leaves = append(ev.Leaves, optimizer.NaryLeaf{
			Rel: i, Theta: thetas[i], X: retrieval.SC, Effort: size, MaxEffort: size,
		})
	}
	var cache *pipeline.Cache
	set := t.shardSet(t.ExtractCacheBytes, t.Shards)
	if set == nil {
		cache = t.extractCache(t.ExtractCacheBytes)
	}
	exec, err := t.mw.NewNaryExecutor(ev, t.MergeCost, t.ExecWorkers, cache, set)
	if err != nil {
		return nil, err
	}
	st, _, err := t.runNaryExec(context.Background(), exec, 0, stop)
	if err != nil {
		return nil, err
	}
	return queryOutcomeOf(queryPlanOf(t.RelationNames(), ev), st, false), nil
}
