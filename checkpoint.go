package joinopt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"joinopt/internal/join"
	"joinopt/internal/optimizer"
)

// CheckpointVersion is the wire-format version AdaptiveCheckpoint's
// MarshalJSON emits. Decoders accept exactly this version; anything else is
// rejected with a *CheckpointDecodeError so an old daemon never misparses a
// newer snapshot.
const CheckpointVersion = 1

// CheckpointDecodeError reports a checkpoint that could not be decoded:
// truncated or syntactically invalid bytes, an unknown wire version, a
// checksum mismatch (bit rot), or semantically impossible contents. Decoding
// never panics and never silently misparses — any defect surfaces as this
// type, so durable stores can discard the snapshot and fall back to a
// from-scratch run.
type CheckpointDecodeError struct {
	Reason string
	Err    error // underlying cause, when any
}

// Error renders the reason with its cause.
func (e *CheckpointDecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("joinopt: checkpoint decode: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("joinopt: checkpoint decode: %s", e.Reason)
}

// Unwrap exposes the underlying cause.
func (e *CheckpointDecodeError) Unwrap() error { return e.Err }

func decodeErr(reason string, err error) error {
	return &CheckpointDecodeError{Reason: reason, Err: err}
}

// checkpointEnvelope is the outer wire frame: a version gate and a CRC32
// (IEEE) over the compact form of the checkpoint payload, so reformatting
// whitespace stays valid while any content corruption is caught.
type checkpointEnvelope struct {
	Version    int             `json:"version"`
	CRC        uint32          `json:"crc"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// checkpointWire mirrors optimizer.Checkpoint field by field, with the
// non-serializable CheckpointErrs carried as strings.
type checkpointWire struct {
	Phase          int                  `json:"phase"`
	Best           optimizer.Eval       `json:"best"`
	Inputs         *optimizer.Inputs    `json:"inputs"`
	Decisions      []optimizer.Decision `json:"decisions,omitempty"`
	CheckpointErrs []string             `json:"checkpoint_errs,omitempty"`
	Switches       int                  `json:"switches,omitempty"`
	TotalTime      float64              `json:"total_time"`
	Exec           join.Snapshot        `json:"exec"`
	Target         [2]int               `json:"target"`
	Ext            int                  `json:"ext,omitempty"`
	Prev           [2]int               `json:"prev"`
	// ShardDocs carries sharded executors' per-shard resolution progress;
	// omitted for unsharded runs so their encoding matches the v1 golden.
	ShardDocs []int `json:"shard_docs,omitempty"`
}

// MarshalJSON encodes the checkpoint as a versioned, checksummed envelope —
// the durable wire format persisted by joinoptd's snapshot store.
func (ck *AdaptiveCheckpoint) MarshalJSON() ([]byte, error) {
	if ck == nil || ck.ck == nil {
		return nil, fmt.Errorf("joinopt: marshaling empty checkpoint")
	}
	c := ck.ck
	w := checkpointWire{
		Phase:     int(c.Phase),
		Best:      c.Best,
		Inputs:    c.Inputs,
		Decisions: c.Decisions,
		Switches:  c.Switches,
		TotalTime: c.TotalTime,
		Exec:      c.Exec,
		Target:    c.Target,
		Ext:       c.Ext,
		Prev:      c.Prev,
		ShardDocs: c.ShardDocs,
	}
	for _, e := range c.CheckpointErrs {
		w.CheckpointErrs = append(w.CheckpointErrs, e.Error())
	}
	raw, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("joinopt: marshaling checkpoint: %w", err)
	}
	return json.Marshal(checkpointEnvelope{
		Version:    CheckpointVersion,
		CRC:        crc32.ChecksumIEEE(raw),
		Checkpoint: raw,
	})
}

// DecodeCheckpoint decodes the wire bytes MarshalJSON produced, verifying
// the version and checksum before trusting any field. Every failure mode —
// truncation, bit flips, version skew, impossible contents, even top-level
// syntax garbage — returns a *CheckpointDecodeError, never a panic or a
// silently misparsed checkpoint.
func DecodeCheckpoint(data []byte) (*AdaptiveCheckpoint, error) {
	ck := &AdaptiveCheckpoint{}
	if err := ck.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return ck, nil
}

// UnmarshalJSON decodes a versioned checkpoint envelope; see
// DecodeCheckpoint. The receiver is left unmodified on error. (When invoked
// through a top-level json.Unmarshal, syntax errors in the surrounding
// document surface as encoding/json errors before this method runs; decode
// raw wire bytes with DecodeCheckpoint to get the typed error for every
// failure mode.)
func (ck *AdaptiveCheckpoint) UnmarshalJSON(data []byte) error {
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return decodeErr("invalid envelope", err)
	}
	if env.Version != CheckpointVersion {
		return decodeErr(fmt.Sprintf("unsupported version %d (want %d)", env.Version, CheckpointVersion), nil)
	}
	if len(env.Checkpoint) == 0 {
		return decodeErr("missing checkpoint payload", nil)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Checkpoint); err != nil {
		return decodeErr("invalid checkpoint payload", err)
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != env.CRC {
		return decodeErr(fmt.Sprintf("checksum mismatch (payload %08x, envelope %08x)", got, env.CRC), nil)
	}
	var w checkpointWire
	if err := json.Unmarshal(env.Checkpoint, &w); err != nil {
		return decodeErr("invalid checkpoint payload", err)
	}
	if w.Phase < int(optimizer.PhaseExecute) || w.Phase > int(optimizer.PhaseFinish) {
		return decodeErr(fmt.Sprintf("impossible phase %d", w.Phase), nil)
	}
	if w.Inputs == nil {
		return decodeErr("missing optimizer inputs", nil)
	}
	if w.Exec.Steps < 0 {
		return decodeErr(fmt.Sprintf("impossible executor step count %d", w.Exec.Steps), nil)
	}
	c := &optimizer.Checkpoint{
		Phase:     optimizer.Phase(w.Phase),
		Best:      w.Best,
		Inputs:    w.Inputs,
		Decisions: w.Decisions,
		Switches:  w.Switches,
		TotalTime: w.TotalTime,
		Exec:      w.Exec,
		Target:    w.Target,
		Ext:       w.Ext,
		Prev:      w.Prev,
		ShardDocs: w.ShardDocs,
	}
	for _, s := range w.CheckpointErrs {
		c.CheckpointErrs = append(c.CheckpointErrs, errors.New(s))
	}
	ck.ck = c
	return nil
}
