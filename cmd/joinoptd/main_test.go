package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the daemon's end-to-end smoke test (also wired up as
// `make serve-smoke`): build the real binary, boot it on a random port,
// drive one adaptive job through submission, event streaming, result and
// metrics, then SIGTERM it and require a clean drain.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "joinoptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-service-workers", "2", "-drain-grace", "30s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "listening on <addr>" once the socket is bound; the
	// rest of its stderr is collected for the drain assertion.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address (%v)", sc.Err())
	}
	logCh := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
		logCh <- rest.String()
	}()
	base := "http://" + addr

	body, _ := json.Marshal(map[string]any{
		"tau_g":    5,
		"tau_b":    120,
		"workload": map[string]any{"num_docs": 500, "seed": 21},
	})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The event stream follows the run live and ends when the job does.
	ev, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(ev.Body)
	ev.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(events, []byte("\n")); n < 3 {
		t.Fatalf("event stream carried only %d lines:\n%s", n, events)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(events), []byte("\n")) {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("event line %q is not JSON: %v", line, err)
		}
	}

	res, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		State  string `json:"state"`
		Result struct {
			Good  int      `json:"good"`
			Plans []string `json:"plans"`
		} `json:"result"`
	}
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || out.State != "done" {
		t.Fatalf("result: %s, state %q", res.Status, out.State)
	}
	// Adaptive runs are best-effort against τg, so assert plausibility, not
	// the requirement itself.
	if out.Result.Good <= 0 || len(out.Result.Plans) == 0 {
		t.Fatalf("implausible result: %+v", out.Result)
	}

	metrics, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	for _, want := range []string{
		`joinoptd_jobs_submitted_total{tenant="default"} 1`,
		`joinoptd_jobs_completed_total{state="done"} 1`,
		"joinoptd_workload_builds_total 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF before calling Wait: Wait closes the pipe, and
	// reaping first races the reader goroutine out of the final log lines.
	var daemonLog string
	select {
	case daemonLog = <-logCh:
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v", err)
	}
	if !strings.Contains(daemonLog, "drained cleanly") {
		t.Errorf("daemon log missing drain confirmation:\n%s", daemonLog)
	}
	fmt.Fprintln(os.Stderr, "serve-smoke: ok,", len(events), "event bytes")
}
