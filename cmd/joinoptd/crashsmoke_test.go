package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemon is one booted joinoptd process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "joinoptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	return bin
}

// startDaemon boots the binary on a random port and waits for the
// "listening on" line. The rest of stderr is drained in the background so
// the child never blocks on a full pipe.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address (%v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr)
	return &daemon{cmd: cmd, base: "http://" + addr}
}

func (d *daemon) submit(t *testing.T, req map[string]any) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// awaitResult polls a job's result endpoint until it reports done.
func (d *daemon) awaitResult(t *testing.T, id string, timeout time.Duration) (good int, plans int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result struct {
				Good  int      `json:"good"`
				Plans []string `json:"plans"`
			} `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch out.State {
		case "done":
			return out.Result.Good, len(out.Result.Plans)
		case "failed", "canceled":
			t.Fatalf("job %s finished %s: %s", id, out.State, out.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %s", id, timeout)
	return 0, 0
}

func (d *daemon) metrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestCrashSmoke is the kill-and-recover harness (`make crash-smoke`): boot
// the real daemon with a state dir, get one sharded adaptive job mid-run
// (its first checkpoint snapshot — carrying per-shard progress — on disk)
// with a second job queued behind it, SIGKILL the process mid-shard, restart
// it against the same directory, and require both jobs to finish — the
// interrupted one resumed from the snapshot with completed shard prefixes
// skipped, the queued one re-enqueued — with the recovery and
// extraction-cache counters visible in /metrics and the NDJSON event stream
// intact.
func TestCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary twice")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()

	a := startDaemon(t, bin, "-service-workers", "1", "-state-dir", dir)
	job := map[string]any{
		"tau_g":    8,
		"tau_b":    400,
		"shards":   2,
		"workload": map[string]any{"num_docs": 1500, "seed": 21},
	}
	running := a.submit(t, job)
	queued := a.submit(t, job)

	// Wait for the running job's first persisted checkpoint, then yank the
	// power. The queued job sits behind the single worker, so it has only a
	// journaled submission.
	ckpt := filepath.Join(dir, "snapshots", running+".ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint snapshot at %s", ckpt)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The persisted snapshot of a sharded job must carry the per-shard
	// progress vector the restarted daemon resumes from (snapshots are
	// written atomically, so one read sees a complete envelope).
	if wire, err := os.ReadFile(ckpt); err != nil {
		t.Fatalf("reading checkpoint snapshot: %v", err)
	} else if !bytes.Contains(wire, []byte(`"shard_docs"`)) {
		t.Errorf("sharded job's checkpoint snapshot carries no shard_docs: %s", wire)
	}
	if err := a.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	a.cmd.Wait()

	b := startDaemon(t, bin, "-service-workers", "1", "-state-dir", dir)
	for _, id := range []string{running, queued} {
		if good, plans := b.awaitResult(t, id, 120*time.Second); good <= 0 || plans == 0 {
			t.Fatalf("recovered job %s finished with implausible result (good=%d plans=%d)", id, good, plans)
		}
	}

	mb := b.metrics(t)
	recovered := metricSum(mb, "joinopt_jobs_recovered_total")
	if recovered != 2 {
		t.Errorf("joinopt_jobs_recovered_total sums to %g, want 2\n%s", recovered, grepLines(mb, "joinopt_jobs_recovered"))
	}
	if !strings.Contains(mb, `joinopt_jobs_recovered_total{how="requeued"} 1`) &&
		!strings.Contains(mb, `joinopt_jobs_recovered_total{how="completed"} 2`) {
		t.Errorf("queued job was not re-enqueued:\n%s", grepLines(mb, "joinopt_jobs_recovered"))
	}
	// The restarted daemon re-extracts against the disk tier the first boot
	// warmed: cache hits must show up in the existing counter family.
	hits := metricSum(mb, "joinopt_extract_cache_hits_total")
	if hits <= 0 {
		t.Errorf("restart saw no extraction-cache hits; disk tier did not warm the cache\n%s",
			grepLines(mb, "joinopt_extract_cache"))
	}

	// The NDJSON event stream still works after recovery: a re-run job's
	// trace replays as parseable JSON lines.
	resp, err := http.Get(b.base + "/v1/jobs/" + queued + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := bytes.Split(bytes.TrimSpace(events), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("recovered job's event stream carried only %d lines", len(lines))
	}
	for _, line := range lines {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("event line %q is not JSON: %v", line, err)
		}
	}

	// Clean shutdown of the restarted daemon.
	if err := b.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("restarted daemon exited uncleanly: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted daemon did not drain after SIGTERM")
	}
	fmt.Fprintf(os.Stderr, "crash-smoke: ok, %g jobs recovered, %g cache hits after restart\n", recovered, hits)
}

// metricSum sums every series of a metric family in a Prometheus text
// exposition (all label combinations).
func metricSum(exposition, family string) float64 {
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

func grepLines(s, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
