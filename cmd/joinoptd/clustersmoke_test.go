package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"joinopt/internal/cluster"
	"joinopt/internal/service"
)

// freePort reserves a listening port and releases it for the daemon to
// claim. Cluster flags need the address before the process exists, so :0
// assignment cannot be used here.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// fullResult fetches a job's complete result payload, tolerating the
// transient failures of a migrating fleet: connection errors (the poll
// may 307 to a dead origin before the survivor marks it down) and 404s
// (the survivor has detected the death but not yet adopted).
func fullResult(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var out struct {
			State  string         `json:"state"`
			Error  string         `json:"error"`
			Result map[string]any `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch out.State {
		case "done":
			return out.Result
		case "failed":
			t.Fatalf("job %s failed: %s", id, out.Error)
		}
		// canceled is transient here: the origin checkpointed it on the way
		// down and the survivor will finish it.
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %s", id, timeout)
	return nil
}

// TestClusterSmoke is the fleet kill-and-migrate harness (`make
// cluster-smoke`): boot two real daemons as a cluster, submit one sharded
// adaptive job through the NON-owning replica (proving ownership
// forwarding), wait for the owner's checkpoints to replicate, SIGKILL the
// owner mid-run, and require the survivor to adopt and finish the job —
// with the result bit-identical to a single-node reference run, and the
// migration visible in joinopt_cluster_migrations_total.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary three times")
	}
	bin := buildDaemon(t)
	job := map[string]any{
		"tau_g":    8,
		"tau_b":    400,
		"shards":   2,
		"tuples":   -1,
		"workload": map[string]any{"num_docs": 5000, "seed": 21},
	}

	// Reference: the same job on a solo daemon, start to finish.
	solo := startDaemon(t, bin, "-service-workers", "1")
	refID := solo.submit(t, job)
	ref := fullResult(t, solo.base, refID, 120*time.Second)
	solo.cmd.Process.Kill()

	// The fleet. Ports must be known up front — every replica needs the
	// full peer list before any of them exists.
	portA, portB := freePort(t), freePort(t)
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	peersCSV := urlA + "," + urlB
	clusterFlags := func(self string, port int) []string {
		return []string{
			"-listen", fmt.Sprintf("127.0.0.1:%d", port),
			"-self", self, "-peers", peersCSV,
			"-service-workers", "1",
			"-probe-interval", "100ms", "-down-after", "3",
			"-state-dir", t.TempDir(),
		}
	}
	a := startDaemon(t, bin, clusterFlags(urlA, portA)...)
	b := startDaemon(t, bin, clusterFlags(urlB, portB)...)
	daemons := map[string]*daemon{urlA: a, urlB: b}

	// Compute ownership the same way the daemons do: the ring over the
	// sorted peer URLs, keyed by the canonical workload key.
	ring, err := cluster.NewRing([]string{urlA, urlB}, 64)
	if err != nil {
		t.Fatal(err)
	}
	req := service.JobRequest{
		TauG: 8, TauB: 400, Shards: 2, Tuples: -1,
		Workload: service.WorkloadSpec{NumDocs: 5000, Seed: 21},
	}
	key := service.CanonicalWorkloadKey(req)
	ownerURL := ring.Owner(key)
	survivorURL := ring.Successor(key, nil)
	owner, survivor := daemons[ownerURL], daemons[survivorURL]
	names := map[string]string{}
	sorted := []string{urlA, urlB}
	if sorted[0] > sorted[1] {
		sorted[0], sorted[1] = sorted[1], sorted[0]
	}
	for i, u := range sorted {
		names[u] = fmt.Sprintf("n%d", i)
	}

	// Submit through the replica that does NOT own the workload: the fleet
	// must route it to the owner transparently.
	id := survivor.submit(t, job)
	if want := names[ownerURL] + "-"; !strings.HasPrefix(id, want) {
		t.Fatalf("job ID %q not created by the owner (want prefix %q)", id, want)
	}
	if fw := metricSum(survivor.metrics(t), "joinopt_cluster_forwards_total"); fw < 1 {
		t.Errorf("submission through the non-owner recorded no forward")
	}

	// Checkpoint replication is synchronous with checkpointing, so once the
	// survivor holds a standby entry the kill cannot outrun the state.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if metricSum(survivor.metrics(t), "joinopt_cluster_standby_jobs") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never received a standby replica")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := owner.cmd.Process.Kill(); err != nil { // SIGKILL mid-run
		t.Fatal(err)
	}
	owner.cmd.Wait()

	got := fullResult(t, survivor.base, id, 120*time.Second)
	if mig := metricSum(survivor.metrics(t), "joinopt_cluster_migrations_total"); mig < 1 {
		t.Errorf("joinopt_cluster_migrations_total = %g on the survivor, want >= 1", mig)
	}

	// Bit-identity: everything except timing matches the reference exactly;
	// timing obeys the Time + ΣCacheSaved cache-warmth invariant.
	for _, field := range []string{"good", "bad", "plans", "tuples", "docs_processed", "queries"} {
		if !reflect.DeepEqual(got[field], ref[field]) {
			t.Errorf("migrated result field %q differs:\n got %v\n ref %v", field, got[field], ref[field])
		}
	}
	sumTime := func(r map[string]any) float64 {
		total, _ := r["time"].(float64)
		if cs, ok := r["cache_saved"].([]any); ok {
			for _, v := range cs {
				f, _ := v.(float64)
				total += f
			}
		}
		return total
	}
	refT, gotT := sumTime(ref), sumTime(got)
	if math.Abs(refT-gotT) > 1e-6*math.Max(1, math.Abs(refT)) {
		t.Errorf("Time+ΣCacheSaved differs: got %g, ref %g", gotT, refT)
	}

	// The survivor drains cleanly.
	if err := survivor.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- survivor.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("survivor exited uncleanly: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("survivor did not drain after SIGTERM")
	}
	fmt.Fprintf(os.Stderr, "cluster-smoke: ok, job %s migrated %s → %s and finished bit-identical (good=%v)\n",
		id, names[ownerURL], names[survivorURL], got["good"])
}
