// Command joinoptd serves the join-optimization stack as a multi-tenant
// HTTP service: clients POST jobs (adaptive, pinned-plan, or optimize-only),
// poll or stream their execution traces, and scrape Prometheus metrics.
//
//	joinoptd -listen :8080 -service-workers 4
//	curl -s localhost:8080/v1/jobs -d '{"tau_g":16,"tau_b":160,"workload":{"num_docs":1000}}'
//	curl -s localhost:8080/v1/jobs/j000001/events   # NDJSON trace stream
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops admitting (readyz turns 503), lets
// in-flight jobs finish until -drain-grace expires, then cancels the rest —
// adaptive jobs checkpoint, keeping partial results resumable.
//
// With -state-dir the daemon is crash-safe: submissions and state
// transitions go to a write-ahead journal, adaptive checkpoints and results
// to snapshot files, and extraction-cache entries to a disk tier. A killed
// daemon restarted against the same directory serves completed results,
// resumes interrupted adaptive jobs from their last checkpoint, and
// re-enqueues jobs that never ran. Disk failures degrade the daemon to
// memory-only (surfaced on /readyz) — they never fail jobs.
//
// With -peers and -self the daemon joins a fleet: replicas route each
// workload to its owner on a consistent-hash ring, probe each other's
// health, replicate running jobs' checkpoints to the replica that would
// inherit them, and migrate jobs off dead or draining members — a job
// started on one replica finishes on another, bit-identical:
//
//	joinoptd -listen :8080 -self http://hostA:8080 -peers http://hostA:8080,http://hostB:8080
//	joinoptd -listen :8080 -self http://hostB:8080 -peers http://hostA:8080,http://hostB:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"joinopt/internal/cluster"
	"joinopt/internal/durable"
	"joinopt/internal/faults"
	"joinopt/internal/obs"
	"joinopt/internal/service"
)

func main() {
	var (
		listen      = flag.String("listen", ":8080", "HTTP listen address")
		workers     = flag.Int("service-workers", 2, "concurrent job executions")
		queueDepth  = flag.Int("queue-depth", 64, "queued jobs before submissions get 429")
		tenantQuota = flag.Int("tenant-quota", 8, "queued+running jobs per tenant before 429 (-1 = unlimited)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 rejections")
		cacheBytes  = flag.Int64("extract-cache", 32<<20, "default shared extraction cache per workload, bytes")
		maxJobs     = flag.Int("max-jobs", 1024, "finished jobs retained for status/result queries")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "shutdown grace before in-flight jobs are canceled")
		traceFile   = flag.String("trace", "", "append every job's trace events to this NDJSON file")
		stateDir    = flag.String("state-dir", "", "directory for the job journal, checkpoint/result snapshots, and the extraction-cache disk tier (empty = memory-only)")
		noPersist   = flag.Bool("no-persist", false, "ignore -state-dir and run memory-only")
		stateFaults = flag.String("state-faults", "", "disk fault-injection profile for the durable store (dwrite=, dsync=, dcorrupt=, seed=; testing only)")

		peers         = flag.String("peers", "", "comma-separated base URLs of every fleet replica, including this one (empty = single node)")
		self          = flag.String("self", "", "this replica's advertised base URL (must appear in -peers)")
		vnodes        = flag.Int("vnodes", 64, "virtual nodes per replica on the consistent-hash ring (identical fleet-wide)")
		probeInterval = flag.Duration("probe-interval", time.Second, "peer health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = half the probe interval)")
		suspectAfter  = flag.Int("suspect-after", 2, "consecutive probe failures marking a peer suspect")
		downAfter     = flag.Int("down-after", 4, "consecutive probe failures marking a peer down (its workloads reroute and its jobs migrate)")
		forwardMode   = flag.String("forward", service.ForwardProxy, "how mis-addressed submissions reach their owner: proxy | redirect")
	)
	flag.Parse()
	if *noPersist {
		*stateDir = ""
	}
	opts := service.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		TenantQuota:       *tenantQuota,
		RetryAfter:        *retryAfter,
		DefaultCacheBytes: *cacheBytes,
		MaxJobs:           *maxJobs,
		ForwardMode:       *forwardMode,
	}
	// Cluster misconfiguration fails at startup with a precise message, not
	// on the first probe: every mistake here (a typo'd peer URL, a self
	// address missing from the list, a duplicated replica) would otherwise
	// surface as a fleet that silently disagrees about ownership.
	var ccfg *cluster.Config
	if *peers != "" || *self != "" {
		switch *forwardMode {
		case service.ForwardProxy, service.ForwardRedirect:
		default:
			fmt.Fprintf(os.Stderr, "joinoptd: -forward %q: want %s or %s\n", *forwardMode, service.ForwardProxy, service.ForwardRedirect)
			os.Exit(1)
		}
		cfg, err := cluster.ParseConfig(*self, *peers, *vnodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "joinoptd:", err)
			os.Exit(1)
		}
		cfg.ProbeInterval = *probeInterval
		cfg.ProbeTimeout = *probeTimeout
		cfg.SuspectAfter = *suspectAfter
		cfg.DownAfter = *downAfter
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "joinoptd:", err)
			os.Exit(1)
		}
		ccfg = &cfg
	}
	if err := run(*listen, *traceFile, *stateDir, *stateFaults, *drainGrace, ccfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "joinoptd:", err)
		os.Exit(1)
	}
}

func run(listen, traceFile, stateDir, stateFaults string, drainGrace time.Duration, ccfg *cluster.Config, opts service.Options) error {
	logger := log.New(os.Stderr, "joinoptd: ", log.LstdFlags)
	opts.Logf = logger.Printf
	// One registry shared by the service, the durable store, and the cluster
	// layer, so /metrics is a single coherent exposition.
	opts.Metrics = obs.NewRegistry()

	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.TraceSink = obs.NewNDJSON(f)
	}

	if stateDir != "" {
		dopts := durable.Options{Metrics: opts.Metrics}
		if stateFaults != "" {
			fp, err := faults.Parse(stateFaults)
			if err != nil {
				return fmt.Errorf("-state-faults: %w", err)
			}
			dopts.Faults = faults.DiskFaults(fp)
		}
		store, rec, err := durable.Open(stateDir, dopts)
		if err != nil {
			// A state dir we cannot even create is a configuration problem,
			// not a transient fault: fall back to memory-only and say so.
			logger.Printf("state dir %s unusable (%v); running memory-only", stateDir, err)
		} else {
			defer store.Close()
			logger.Printf("state dir %s: replayed %d journaled jobs (%d corrupt lines skipped)",
				stateDir, len(rec.Jobs), rec.CorruptLines)
			if deg, why := store.Degraded(); deg {
				logger.Printf("durable store degraded at startup: %s", why)
			}
			opts.Durable = store
			opts.Recovered = rec
		}
	}

	var cl *cluster.Cluster
	if ccfg != nil {
		var err error
		cl, err = cluster.New(*ccfg, opts.Metrics, logger)
		if err != nil {
			return err
		}
		opts.Cluster = cl
	}

	svc := service.New(opts)
	srv := &http.Server{Handler: svc.Handler()}
	if cl != nil {
		cl.Start()
		defer cl.Stop()
		logger.Printf("cluster: %s of %d replicas (%d vnodes, forward=%s)",
			cl.SelfName(), cl.Size(), ccfg.VNodes, opts.ForwardMode)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// The smoke test and loadgen parse this line to find a :0-assigned port.
	logger.Printf("listening on %s", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("got %s, draining (grace %s)", sig, drainGrace)
	case err := <-errCh:
		return err
	}

	// Drain: stop admitting, let in-flight jobs finish, cancel stragglers
	// (adaptive runs checkpoint), then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	svc.Drain(dctx)
	if cl != nil {
		// Canceled-but-resumable adaptive jobs hand off to their ring
		// successor so the fleet finishes what this replica started. Fresh
		// context: dctx may have spent its whole grace inside Drain.
		hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if n := svc.Handoff(hctx); n > 0 {
			logger.Printf("cluster: handed %d checkpointed jobs to successors", n)
		}
		hcancel()
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-errCh // Serve has returned ErrServerClosed
	logger.Printf("drained cleanly")
	return nil
}
