// Command loadgen drives a running joinoptd closed-loop: each of -clients
// concurrent clients submits a job, follows it to completion, and submits
// the next. 429 rejections are honoured by sleeping out the Retry-After
// hint — together with the daemon's admission control this forms the
// closed-loop backpressure cycle.
//
//	joinoptd -listen :8080 &
//	loadgen -addr localhost:8080 -clients 8 -jobs 64 -tenants 2
//
// Against a fleet, -targets takes every replica; a 503 (draining replica)
// or a connection error rotates the client to the next target instead of
// failing the job, so a rolling restart shows up as rebalanced load, not
// errors:
//
//	loadgen -targets localhost:8081,localhost:8082 -clients 8 -jobs 64
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"joinopt/internal/service"
)

// summary is the machine-readable run report behind -json (committed as
// BENCH_service.json by `make bench-service`).
type summary struct {
	Clients       int              `json:"clients"`
	Tenants       int              `json:"tenants"`
	JobsCompleted int64            `json:"jobs_completed"`
	JobsFailed    int64            `json:"jobs_failed"`
	Rejected429   int64            `json:"rejected_429"`
	Rejected503   int64            `json:"rejected_503"`
	Rate429       float64          `json:"rate_429"` // 429s per submission attempt
	ElapsedSec    float64          `json:"elapsed_sec"`
	JobsPerSec    float64          `json:"jobs_per_sec"`
	LatencyP50Ms  float64          `json:"latency_p50_ms"` // end-to-end submit→done
	LatencyP99Ms  float64          `json:"latency_p99_ms"`
	GoodTuples    int64            `json:"good_tuples"`
	BadTuples     int64            `json:"bad_tuples"`
	PerTarget     map[string]int64 `json:"per_target,omitempty"` // accepted submissions by target
}

// targetSet is the rotation of daemon base URLs a client walks when one
// pushes back (429/503) or drops the connection.
type targetSet struct {
	bases  []string
	counts []atomic.Int64 // accepted submissions per base
}

func newTargetSet(addrCSV string) (*targetSet, error) {
	ts := &targetSet{}
	for _, a := range strings.Split(addrCSV, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		ts.bases = append(ts.bases, strings.TrimRight(a, "/"))
	}
	if len(ts.bases) == 0 {
		return nil, fmt.Errorf("no targets")
	}
	ts.counts = make([]atomic.Int64, len(ts.bases))
	return ts, nil
}

func (ts *targetSet) perTarget() map[string]int64 {
	m := make(map[string]int64, len(ts.bases))
	for i, b := range ts.bases {
		m[b] = ts.counts[i].Load()
	}
	return m
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "joinoptd address (single target)")
		targets  = flag.String("targets", "", "comma-separated joinoptd addresses; rotate on 429/503/conn-error (overrides -addr)")
		clients  = flag.Int("clients", 4, "concurrent closed-loop clients")
		jobs     = flag.Int("jobs", 32, "total jobs to submit")
		tenants  = flag.Int("tenants", 1, "spread jobs round-robin over this many tenants")
		docs     = flag.Int("docs", 500, "workload documents per database")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		tauG     = flag.Int("taug", 16, "per-job requirement τg")
		tauB     = flag.Int("taub", 160, "per-job requirement τb")
		mode     = flag.String("mode", "adaptive", "job mode: adaptive|optimize")
		timeout  = flag.Duration("timeout", 5*time.Minute, "per-job completion timeout")
		jsonPath = flag.String("json", "", "write a JSON summary (p50/p99 latency, 429 rate, completions) to this file ('-' = stdout)")
	)
	flag.Parse()

	csv := *targets
	if csv == "" {
		csv = *addr
	}
	ts, err := newTargetSet(csv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	var (
		next        atomic.Int64
		done        atomic.Int64
		failed      atomic.Int64
		rejected    atomic.Int64
		unavailable atomic.Int64
		good, bad   atomic.Int64
		wg          sync.WaitGroup

		latMu     sync.Mutex
		latencies []float64 // ms, completed jobs only
	)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(*jobs) {
					return
				}
				req := service.JobRequest{
					Tenant: fmt.Sprintf("tenant-%d", int(n)%*tenants),
					Mode:   *mode,
					TauG:   *tauG,
					TauB:   *tauB,
					Workload: service.WorkloadSpec{
						NumDocs: *docs,
						Seed:    *seed,
					},
				}
				jobStart := time.Now()
				res, err := runJob(ts, c, req, *timeout, &rejected, &unavailable)
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: job %d: %v\n", n, err)
					failed.Add(1)
					continue
				}
				latMu.Lock()
				latencies = append(latencies, float64(time.Since(jobStart))/float64(time.Millisecond))
				latMu.Unlock()
				done.Add(1)
				good.Add(int64(res.Good))
				bad.Add(int64(res.Bad))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("loadgen: %d done, %d failed, %d retried-after-429, %d retried-after-503, %.1f jobs/s, %d good / %d bad tuples total\n",
		done.Load(), failed.Load(), rejected.Load(), unavailable.Load(),
		float64(done.Load())/elapsed.Seconds(), good.Load(), bad.Load())

	if *jsonPath != "" {
		attempts := rejected.Load() + done.Load() + failed.Load()
		s := summary{
			Clients:       *clients,
			Tenants:       *tenants,
			JobsCompleted: done.Load(),
			JobsFailed:    failed.Load(),
			Rejected429:   rejected.Load(),
			Rejected503:   unavailable.Load(),
			ElapsedSec:    elapsed.Seconds(),
			JobsPerSec:    float64(done.Load()) / elapsed.Seconds(),
			LatencyP50Ms:  percentile(latencies, 0.50),
			LatencyP99Ms:  percentile(latencies, 0.99),
			GoodTuples:    good.Load(),
			BadTuples:     bad.Load(),
			PerTarget:     ts.perTarget(),
		}
		if attempts > 0 {
			s.Rate429 = float64(rejected.Load()) / float64(attempts)
		}
		if err := writeSummary(*jsonPath, s); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// percentile returns the nearest-rank q-th percentile of xs in place.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(q*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

func writeSummary(path string, s summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runJob submits one job — retrying 429s per the Retry-After hint, rotating
// to the next target on 503 (draining) or a connection error — then polls it
// to completion. Polls hit the target that accepted the submission; cluster
// replicas 307-redirect job IDs they don't hold, and http.Get follows.
func runJob(ts *targetSet, client int, req service.JobRequest, timeout time.Duration, rejected, unavailable *atomic.Int64) (*service.JobResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)

	var id string
	var base string
	ti := client % len(ts.bases) // spread clients over the fleet
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("timed out waiting for admission")
		}
		base = ts.bases[ti%len(ts.bases)]
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			// Target gone (restart, crash): try the next one.
			ti++
			unavailable.Add(1)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining: same treatment as 429 — back off — but move to the
			// next target, since this one will not come back for this run.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ti++
			unavailable.Add(1)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected.Add(1)
			ti++ // another replica may have queue headroom right now
			if time.Now().Add(wait).After(deadline) {
				return nil, fmt.Errorf("timed out waiting for admission")
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(b))
		}
		var st service.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		id = st.ID
		ts.counts[ti%len(ts.bases)].Add(1)
		break
	}

	pollMiss := 0
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			// The accepting target died; any surviving replica can route (or
			// now owns) the job. Rotate and keep polling.
			ti++
			base = ts.bases[ti%len(ts.bases)]
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusAccepted {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusNotFound && pollMiss < 50 {
			// A migrating job can be momentarily unknown everywhere (origin
			// dead, successor not yet adopted): poll through the gap.
			pollMiss++
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ti++
			base = ts.bases[ti%len(ts.bases)]
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("result: %s: %s", resp.Status, bytes.TrimSpace(b))
		}
		var out struct {
			State  string             `json:"state"`
			Error  string             `json:"error"`
			Result *service.JobResult `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if out.State != service.StateDone {
			return nil, fmt.Errorf("job %s %s: %s", id, out.State, out.Error)
		}
		return out.Result, nil
	}
	return nil, fmt.Errorf("job %s: timed out", id)
}
