// Command joinopt runs a quality-aware extraction join end to end on a
// synthetic HQ ⋈ EX workload:
//
//	joinopt -taug 16 -taub 160                 # adaptive optimization (§VI)
//	joinopt -taug 16 -taub 160 -mode optimize  # perfect-knowledge plan choice
//	joinopt -mode plan -jn OIJN -x1 SC         # execute one specific plan
//	joinopt -mode budget -budget 5000          # max good output within a time budget
//	joinopt -mode precision -taug 16 -prec 0.5 # precision-style preference
//
// It reports the chosen plan, the cost-model execution time, and the true
// output composition (graded against the generator's gold sets).
//
// Observability:
//
//	joinopt -trace run.ndjson    # write the structured execution trace
//	joinopt -metrics             # print the Prometheus-text metrics snapshot
//	joinopt -profile cpu.pprof   # write a CPU profile of the run
//	joinopt -pprof :6060         # serve net/http/pprof while running
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"

	"joinopt"
)

func main() {
	var (
		docs    = flag.Int("docs", 4000, "documents per text database")
		seed    = flag.Int64("seed", 1, "generation seed")
		tauG    = flag.Int("taug", 16, "minimum number of good join tuples (τg)")
		tauB    = flag.Int("taub", 160, "maximum number of bad join tuples (τb)")
		mode    = flag.String("mode", "adaptive", "adaptive|optimize|robust|plan|budget|precision|recall")
		sigma   = flag.Float64("sigma", 2, "robust mode: confidence margin in standard deviations")
		budget  = flag.Float64("budget", 5000, "budget mode: execution-time budget")
		prec    = flag.Float64("prec", 0.5, "precision mode: minimum output precision")
		recall  = flag.Float64("recall", 0.25, "recall mode: minimum fraction of achievable good tuples")
		jn      = flag.String("jn", "IDJN", "plan mode: join algorithm IDJN|OIJN|ZGJN")
		th1     = flag.Float64("theta1", 0.4, "plan mode: knob θ1 (minSim)")
		th2     = flag.Float64("theta2", 0.4, "plan mode: knob θ2 (minSim)")
		x1      = flag.String("x1", "SC", "plan mode: retrieval strategy for R1 (SC|FS|AQG)")
		x2      = flag.String("x2", "SC", "plan mode: retrieval strategy for R2 (SC|FS|AQG)")
		outer   = flag.Int("outer", 0, "plan mode: OIJN outer side (0 or 1)")
		show    = flag.Int("show", 5, "number of join tuples to print")
		workers = flag.Int("workers", 0, "optimizer plan-evaluation workers (0 = all cores, 1 = sequential)")

		execWorkers  = flag.Int("exec-workers", 0, "pipelined extraction workers per execution (0 = sequential; results are bit-identical at any setting)")
		shards       = flag.Int("shards", 0, "corpus shards for scatter-gather execution (0/1 = unsharded; output is bit-identical at any shard count)")
		extractCache = flag.Int64("extract-cache", 0, "shared extraction cache capacity in bytes (0 = disabled; split evenly across shards)")

		faultsFlag = flag.String("faults", "", joinopt.FaultProfileHelp)
		retries    = flag.Int("retries", 0, "max retries per failed substrate call (0 = default 3, -1 = disabled)")
		failBudget = flag.Int("failure-budget", 0, "abort once this many documents per side are lost (0 = unlimited)")
		deadline   = flag.Float64("deadline", 0, "cost-model time deadline per execution (0 = none)")

		tracePath   = flag.String("trace", "", "write the NDJSON execution trace to this file")
		metricsFlag = flag.Bool("metrics", false, "print the Prometheus-text metrics snapshot after the run")
		profilePath = flag.String("profile", "", "write a CPU profile of the run to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address while running (e.g. :6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "joinopt: pprof server:", err)
			}
		}()
	}
	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var runOpts []joinopt.RunOption
	var traceFile *joinopt.TraceFile
	if *tracePath != "" {
		var err error
		if traceFile, err = joinopt.CreateTraceFile(*tracePath); err != nil {
			fatal(err)
		}
		runOpts = append(runOpts, joinopt.WithTracer(joinopt.NewTrace(traceFile)))
	}
	var metrics *joinopt.Metrics
	if *metricsFlag {
		metrics = joinopt.NewMetrics()
		runOpts = append(runOpts, joinopt.WithMetrics(metrics))
	}
	// seal flushes the observability outputs; fatal paths skip it, keeping
	// partial traces on disk for post-mortem inspection.
	seal := func() {
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "joinopt: trace:", err)
			}
			fmt.Printf("\ntrace written to %s\n", *tracePath)
		}
		if metrics != nil {
			fmt.Println("\nmetrics snapshot:")
			if err := metrics.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "joinopt: metrics:", err)
			}
		}
	}

	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: *docs, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	task.Workers = *workers
	task.ExecWorkers = *execWorkers
	task.Shards = *shards
	task.ExtractCacheBytes = *extractCache
	if task.Faults, err = joinopt.ParseFaultProfile(*faultsFlag); err != nil {
		fatal(err)
	}
	task.Retry = joinopt.RetryPolicy{MaxRetries: *retries, FailureBudget: *failBudget}
	task.Deadline = *deadline
	r1, r2 := task.Relations()
	d1, d2 := task.DatabaseSizes()
	fmt.Printf("task: %s (%d docs) ⋈ %s (%d docs)\n", r1, d1, r2, d2)
	fmt.Printf("gold join size (upper bound on good output): %d\n\n", task.GoldJoinSize())
	req := joinopt.Requirement{TauG: *tauG, TauB: *tauB}
	ctx := context.Background()

	// run executes and reports a deadline stop as a note, not a failure.
	run := func(req joinopt.Requirement, opts ...joinopt.RunOption) *joinopt.RunResult {
		res, err := task.Run(ctx, req, append(append([]joinopt.RunOption(nil), runOpts...), opts...)...)
		if errors.Is(err, joinopt.ErrDeadline) {
			fmt.Println("note: deadline cut the execution short")
			err = nil
		}
		if err != nil {
			fatal(err)
		}
		return res
	}

	switch *mode {
	case "adaptive":
		res := run(req)
		fmt.Printf("requirement: τg=%d τb=%d\n", req.TauG, req.TauB)
		for i, p := range res.Plans {
			fmt.Printf("decision %d: %s\n", i+1, p)
		}
		if n := len(res.CheckpointErrs); n > 0 {
			// Warn once; the full list is in joinopt_checkpoint_errors_total
			// and the trace's checkpoint.error events.
			fmt.Printf("warning: %d checkpoint optimization failure(s); run fell back to its current plan\n", n)
		}
		report(res.Outcome, *show)
		fmt.Printf("total cost-model time (incl. pilot): %.0f\n", res.TotalTime)
	case "optimize":
		best, err := task.Optimize(req)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("chosen plan: %s\n", best.Plan)
		fmt.Printf("predicted: good=%.0f bad=%.0f time=%.0f\n\n", best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)
		res := run(req, joinopt.WithPlan(best.Plan), joinopt.WithStop(func(p joinopt.Progress) bool {
			return p.GoodTuples >= req.TauG
		}))
		report(res.Outcome, *show)
	case "plan":
		plan := joinopt.Plan{
			Algorithm: joinopt.Algorithm(*jn),
			Theta:     [2]float64{*th1, *th2},
			X:         [2]joinopt.Strategy{joinopt.Strategy(*x1), joinopt.Strategy(*x2)},
			OuterIdx:  *outer,
		}
		if plan.Algorithm == joinopt.OuterInnerJoin {
			inner := 1 - *outer
			plan.X[inner] = joinopt.QueryRetrieve
		}
		if plan.Algorithm == joinopt.ZigZagJoin {
			plan.X = [2]joinopt.Strategy{joinopt.QueryRetrieve, joinopt.QueryRetrieve}
		}
		res := run(req, joinopt.WithPlan(plan), joinopt.WithStop(func(p joinopt.Progress) bool {
			return p.GoodTuples >= req.TauG
		}))
		fmt.Printf("executed plan: %s\n", plan)
		report(res.Outcome, *show)
	case "robust":
		best, err := task.OptimizeRobust(req, *sigma)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("robust (%.0fσ) chosen plan: %s\n", *sigma, best.Plan)
		fmt.Printf("conservative bounds: good ≥ %.0f, bad ≤ %.0f, time %.0f\n",
			best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)
	case "budget":
		best, err := task.OptimizeWithinBudget(*budget, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("time budget %.0f → plan: %s\n", *budget, best.Plan)
		fmt.Printf("predicted: good=%.0f bad=%.0f time=%.0f\n", best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)
		res := run(req, joinopt.WithPlan(best.Plan), joinopt.WithStop(func(p joinopt.Progress) bool {
			return p.Time >= *budget
		}))
		report(res.Outcome, *show)
	case "precision":
		best, derived, err := task.OptimizePrecision(*tauG, *prec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("precision ≥ %.2f with %d good → requirement τg=%d τb=%d\n", *prec, *tauG, derived.TauG, derived.TauB)
		fmt.Printf("chosen plan: %s (predicted good=%.0f bad=%.0f time=%.0f)\n",
			best.Plan, best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)
	case "recall":
		best, derived, err := task.OptimizeRecall(*recall)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recall ≥ %.2f → requirement τg=%d τb=%d\n", *recall, derived.TauG, derived.TauB)
		fmt.Printf("chosen plan: %s (predicted good=%.0f bad=%.0f time=%.0f)\n",
			best.Plan, best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	seal()
}

func report(out *joinopt.Outcome, show int) {
	if out == nil {
		fmt.Println("no execution outcome")
		return
	}
	fmt.Printf("\nactual output: good=%d bad=%d (precision %.2f)\n",
		out.GoodTuples, out.BadTuples,
		float64(out.GoodTuples)/float64(max(1, out.GoodTuples+out.BadTuples)))
	fmt.Printf("work: processed=%v retrieved=%v queries=%v time=%.0f\n",
		out.DocsProcessed, out.DocsRetrieved, out.Queries, out.Time)
	if out.RetriesSpent != [2]int{} || out.DocsFailed != [2]int{} || out.Degraded || out.DeadlineHit {
		fmt.Printf("faults: retries=%v lost-docs=%v degraded=%v deadline-hit=%v\n",
			out.RetriesSpent, out.DocsFailed, out.Degraded, out.DeadlineHit)
	}
	tuples := out.Tuples()
	if show > len(tuples) {
		show = len(tuples)
	}
	if show > 0 {
		fmt.Printf("sample join tuples (%d of %d):\n", show, len(tuples))
		for _, t := range tuples[:show] {
			label := "good"
			if !t.Good {
				label = "bad "
			}
			fmt.Printf("  [%s] <%s, %s, %s>\n", label, t.A, t.B, t.C)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinopt:", err)
	os.Exit(1)
}
