// Command benchjson turns `go test -bench` output into a machine-readable
// JSON report, and checks the pipelined-executor speedup claims against one.
//
// Emit mode (default): parse benchmark lines from stdin and write
// BENCH_exec.json-style output to -o (or stdout). Repeated runs of the same
// benchmark (`-count 3`) are merged into one entry carrying the median of
// each metric and the sample count, so the recorded numbers are not
// single-run noise:
//
//	go test -run '^$' -bench 'BenchmarkExec' -count 3 . | benchjson -o BENCH_exec.json
//
// Check mode: `benchjson -check BENCH_exec.json` verifies every
// BenchmarkExec*/seq vs /workers4 pair, plus the scatter-gather scaling pair
// BenchmarkExecShardedIDJN8k/shards1 vs /shards4. The report records the
// GOMAXPROCS the benchmarks ran under; on a single-CPU box a parallel
// speedup is impossible by construction, so a sub-2-CPU artifact is refused
// outright — it is not a valid comparison baseline, and treating it as one
// would let a mis-provisioned recording quietly disable every gate. Pass
// -allow-single-cpu to downgrade that refusal to a skip (exit 0) for local
// runs on small machines; -require-parallel keeps the refusal even then (CI
// sets it so the gate can never be bypassed). With 2–3 CPUs pipelined and
// sharded execution must at least not lose to sequential (within -slack); at
// 4+ CPUs the IDJN pair must reach -min-speedup (default 2×) and the
// shards1/shards4 pair must reach -min-shard-speedup (default 2.5×).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's merged result: the median over its repeated
// runs (Samples of them) for each metric.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Samples     int     `json:"samples,omitempty"`
}

// Report is the BENCH_exec.json schema.
type Report struct {
	GoMaxProcs int         `json:"go_max_procs"`
	GoVersion  string      `json:"go_version"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   12   3456 ns/op   78 B/op   9 allocs/op`;
// the trailing -N is the GOMAXPROCS suffix the test runner appends.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func parse(lines *bufio.Scanner) ([]Benchmark, error) {
	var out []Benchmark
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(lines.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations in %q: %w", lines.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("ns/op in %q: %w", lines.Text(), err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns, Samples: 1}
		// The remainder holds `<v> B/op` and `<v> allocs/op` value/unit pairs.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	return out, lines.Err()
}

// median returns the middle value of xs (the lower middle for even counts,
// which is the conservative — slower — choice for timing samples).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[(len(xs)-1)/2]
}

// merge collapses repeated runs of the same benchmark (`-count N`) into one
// entry per name holding the median of each metric, in first-seen order.
func merge(benches []Benchmark) []Benchmark {
	byName := map[string][]Benchmark{}
	var order []string
	for _, b := range benches {
		if _, seen := byName[b.Name]; !seen {
			order = append(order, b.Name)
		}
		byName[b.Name] = append(byName[b.Name], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		runs := byName[name]
		pick := func(metric func(Benchmark) float64) float64 {
			xs := make([]float64, len(runs))
			for i, r := range runs {
				xs[i] = metric(r)
			}
			return median(xs)
		}
		var iters int64
		for _, r := range runs {
			iters += r.Iterations
		}
		out = append(out, Benchmark{
			Name:        name,
			Iterations:  iters,
			NsPerOp:     pick(func(b Benchmark) float64 { return b.NsPerOp }),
			BytesPerOp:  pick(func(b Benchmark) float64 { return b.BytesPerOp }),
			AllocsPerOp: pick(func(b Benchmark) float64 { return b.AllocsPerOp }),
			Samples:     len(runs),
		})
	}
	return out
}

// check verifies the seq-vs-workers4 and shards1-vs-shards4 pairs in a
// previously emitted report.
func check(path string, minSpeedup, minShardSpeedup, slack float64, requireParallel, allowSingleCPU bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.GoMaxProcs < 2 {
		if allowSingleCPU && !requireParallel {
			fmt.Printf("benchjson: GOMAXPROCS=%d — parallel speedup not measurable on this machine, skipping check (-allow-single-cpu)\n", rep.GoMaxProcs)
			return nil
		}
		return fmt.Errorf("report was produced at GOMAXPROCS=%d: a single-CPU artifact is not a valid "+
			"comparison baseline (re-record BENCH_exec.json on a >= 2-core machine, or pass "+
			"-allow-single-cpu to skip the check on this one)", rep.GoMaxProcs)
	}
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	pairs := 0
	for name, seq := range byName {
		if !strings.HasSuffix(name, "/seq") || !strings.HasPrefix(name, "BenchmarkExec") {
			continue
		}
		par, ok := byName[strings.TrimSuffix(name, "/seq")+"/workers4"]
		if !ok {
			return fmt.Errorf("%s has no workers4 counterpart", name)
		}
		pairs++
		speedup := seq.NsPerOp / par.NsPerOp
		fmt.Printf("benchjson: [go_max_procs=%d] %-24s seq %.0f ns/op, workers4 %.0f ns/op, speedup %.2fx\n",
			rep.GoMaxProcs, strings.TrimSuffix(strings.TrimPrefix(name, "Benchmark"), "/seq"), seq.NsPerOp, par.NsPerOp, speedup)
		if speedup < 1/(1+slack) {
			return fmt.Errorf("%s: 4-worker pipeline is %.2fx slower than sequential (allowed slack %.0f%%)",
				name, 1/speedup, slack*100)
		}
		if rep.GoMaxProcs >= 4 && strings.Contains(name, "IDJN") && speedup < minSpeedup {
			return fmt.Errorf("%s: speedup %.2fx below the required %.1fx at GOMAXPROCS=%d",
				name, speedup, minSpeedup, rep.GoMaxProcs)
		}
	}
	if pairs == 0 {
		return fmt.Errorf("%s holds no BenchmarkExec*/seq results", path)
	}

	// The scatter-gather scaling gate: shards4 vs the shards1 sequential
	// baseline of the sharded IDJN benchmark. A report missing the pair is an
	// error — the gate must not silently pass because the benchmark was
	// dropped from the recording regex.
	const shardBench = "BenchmarkExecShardedIDJN8k"
	one, okOne := byName[shardBench+"/shards1"]
	four, okFour := byName[shardBench+"/shards4"]
	if !okOne || !okFour {
		return fmt.Errorf("%s holds no %s/shards1 + /shards4 pair — re-record with the shard benchmark included", path, shardBench)
	}
	shardSpeedup := one.NsPerOp / four.NsPerOp
	fmt.Printf("benchjson: [go_max_procs=%d] %-24s shards1 %.0f ns/op, shards4 %.0f ns/op, speedup %.2fx\n",
		rep.GoMaxProcs, strings.TrimPrefix(shardBench, "Benchmark"), one.NsPerOp, four.NsPerOp, shardSpeedup)
	if shardSpeedup < 1/(1+slack) {
		return fmt.Errorf("%s: 4-shard execution is %.2fx slower than unsharded (allowed slack %.0f%%)",
			shardBench, 1/shardSpeedup, slack*100)
	}
	if rep.GoMaxProcs >= 4 && shardSpeedup < minShardSpeedup {
		return fmt.Errorf("%s: shard speedup %.2fx below the required %.1fx at GOMAXPROCS=%d",
			shardBench, shardSpeedup, minShardSpeedup, rep.GoMaxProcs)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	checkPath := flag.String("check", "", "check an existing report instead of emitting one")
	minSpeedup := flag.Float64("min-speedup", 2.0, "required IDJN seq/workers4 speedup at GOMAXPROCS >= 4")
	minShardSpeedup := flag.Float64("min-shard-speedup", 2.5, "required ExecShardedIDJN8k shards1/shards4 speedup at GOMAXPROCS >= 4")
	slack := flag.Float64("slack", 0.10, "allowed fractional regression of workers4 vs seq (and shards4 vs shards1)")
	requireParallel := flag.Bool("require-parallel", false,
		"refuse -check even with -allow-single-cpu when the report was recorded at GOMAXPROCS < 2")
	allowSingleCPU := flag.Bool("allow-single-cpu", false,
		"skip -check (exit 0) instead of refusing when the report was recorded at GOMAXPROCS < 2")
	flag.Parse()

	if *checkPath != "" {
		if err := check(*checkPath, *minSpeedup, *minShardSpeedup, *slack, *requireParallel, *allowSingleCPU); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	benches, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(), Benchmarks: merge(benches)}
	fmt.Fprintf(os.Stderr, "benchjson: go_max_procs=%d go=%s benchmarks=%d (medians over repeated runs)\n",
		rep.GoMaxProcs, rep.GoVersion, len(rep.Benchmarks))
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
