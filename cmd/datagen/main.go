// Command datagen generates a synthetic HQ ⋈ EX workload and persists its
// four text databases (two targets, two training splits) as JSON:
//
//	datagen -docs 4000 -seed 1 -out ./data
//
// The files carry full document text plus gold mention annotations, so they
// can be reloaded with corpus.LoadFile for offline experimentation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"joinopt/internal/workload"
)

func main() {
	var (
		docs = flag.Int("docs", 4000, "documents per text database")
		seed = flag.Int64("seed", 1, "generation seed")
		out  = flag.String("out", "data", "output directory")
	)
	flag.Parse()

	w, err := workload.HQJoinEX(workload.Params{NumDocs: *docs, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	save := func(name string, save func(string) error) {
		path := filepath.Join(*out, name+".json")
		if err := save(path); err != nil {
			fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%.1f MiB)\n", path, float64(info.Size())/(1<<20))
	}
	save(w.DB[0].Name, w.DB[0].SaveFile)
	save(w.DB[1].Name, w.DB[1].SaveFile)
	save(w.Train[0].Name, w.Train[0].SaveFile)
	save(w.Train[1].Name, w.Train[1].SaveFile)

	for i := 0; i < 2; i++ {
		stats := w.DB[i].Stats(w.Task[i])
		fmt.Printf("%s: task %s, |D|=%d |Dg|=%d |Db|=%d |Ag|=%d |Ab|=%d\n",
			w.DB[i].Name, w.Task[i], stats.NumDocs(), stats.NumGood, stats.NumBad,
			stats.GoodValues(), stats.BadValues())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
