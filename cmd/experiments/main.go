// Command experiments regenerates the tables and figures of the paper's
// evaluation (§VII) on a synthetic HQ ⋈ EX workload:
//
//	experiments -exp all                 # every figure and Table II
//	experiments -exp fig9 -docs 8000     # one figure on a larger corpus
//	experiments -exp table2 -seed 7
//
// Each figure prints estimated-vs-actual series; Table II prints the
// optimizer's plan choice per (τg, τb) requirement compared against every
// alternative plan's actual execution time.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"joinopt/internal/eval"
	"joinopt/internal/experiments"
	"joinopt/internal/faults"
	"joinopt/internal/obs"
	"joinopt/internal/pipeline"
	"joinopt/internal/shard"
	"joinopt/internal/workload"
)

func main() {
	var (
		docs    = flag.Int("docs", 4000, "documents per text database")
		seed    = flag.Int64("seed", 1, "generation seed")
		topK    = flag.Int("topk", 0, "search-interface result cap (0 = size-proportional default)")
		exp     = flag.String("exp", "all", "experiment to run: fig9|fig10|fig11|fig12|table2|estimation|faultsweep|all")
		task    = flag.String("task", "hqex", "join task: hqex (the paper's primary) or mgex (Example 1.1)")
		th      = flag.Float64("theta", 0.4, "knob setting for the accuracy figures (fig9-fig11)")
		csv     = flag.String("csv", "", "also write results as CSV files into this directory")
		workers = flag.Int("workers", 0, "optimizer plan-evaluation workers (0 = all cores, 1 = sequential)")
		faultsF = flag.String("faults", "", faults.FlagHelp)

		execWorkers  = flag.Int("exec-workers", 0, "pipelined extraction workers per execution (0 = sequential; results are bit-identical at any setting)")
		shardsF      = flag.Int("shards", 0, "corpus shards for scatter-gather execution (0/1 = unsharded; output is bit-identical at any shard count)")
		extractCache = flag.Int64("extract-cache", 0, "shared extraction cache capacity in bytes (0 = disabled; split evenly across shards)")

		tracePath   = flag.String("trace", "", "write the NDJSON execution trace of every run to this file")
		metricsFlag = flag.Bool("metrics", false, "print the Prometheus-text metrics snapshot at the end")
		profilePath = flag.String("profile", "", "write a CPU profile to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address while running (e.g. :6060)")
	)
	flag.Parse()
	experiments.ChooseWorkers = *workers
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fatal(err)
		}
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof server:", err)
			}
		}()
	}
	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	tasks, ok := map[string][2]string{"hqex": {"HQ", "EX"}, "mgex": {"MG", "EX"}}[*task]
	if !ok {
		fatal(fmt.Errorf("unknown task %q (want hqex or mgex)", *task))
	}
	w, err := workload.Pair(workload.Params{NumDocs: *docs, Seed: *seed, TopK: *topK}, tasks[0], tasks[1])
	if err != nil {
		fatal(err)
	}
	if w.Faults, err = faults.Parse(*faultsF); err != nil {
		fatal(err)
	}
	w.ExecWorkers = *execWorkers
	w.Shards = *shardsF
	if w.Shards >= 2 {
		// Sharded runs split the cache budget across per-shard slices.
		w.ShardSet = shard.NewSet(shard.Partition{N: w.Shards}, *extractCache)
	} else if *extractCache > 0 {
		w.ExtractCache = pipeline.NewCache(*extractCache)
	}
	var traceFile *obs.NDJSON
	if *tracePath != "" {
		if traceFile, err = obs.CreateNDJSON(*tracePath); err != nil {
			fatal(err)
		}
		w.Trace = obs.New(traceFile)
	}
	if *metricsFlag {
		w.Metrics = obs.NewRegistry()
	}
	fmt.Printf("workload: %s on %s (%d docs), %s on %s (%d docs), top-k=%d, seed=%d\n\n",
		tasks[0], w.DB[0].Name, w.DB[0].Size(), tasks[1], w.DB[1].Name, w.DB[1].Size(), w.Ix[0].TopK(), *seed)

	figures := map[string]func(*workload.Workload) (*eval.Figure, error){
		"fig9":  func(w *workload.Workload) (*eval.Figure, error) { return experiments.Fig9Theta(w, *th) },
		"fig10": func(w *workload.Workload) (*eval.Figure, error) { return experiments.Fig10Theta(w, *th) },
		"fig11": func(w *workload.Workload) (*eval.Figure, error) { return experiments.Fig11Theta(w, *th) },
		"fig12": experiments.Fig12,
	}
	writeCSV := func(name, content string) {
		if *csv == "" {
			return
		}
		path := filepath.Join(*csv, name+".csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	run := func(id string) {
		if f, ok := figures[id]; ok {
			fig, err := f(w)
			if err != nil {
				fatal(err)
			}
			fmt.Println(fig)
			for _, s := range fig.Series {
				fmt.Printf("  mean |est-act|/act for %q: %.2f\n", s.Label, s.MeanAbsRelErr())
			}
			writeCSV(id, fig.CSV())
			fmt.Println()
			return
		}
		if id == "estimation" {
			table, err := experiments.Estimation(w)
			if err != nil {
				fatal(err)
			}
			fmt.Println(table)
			writeCSV(id, table.CSV())
			return
		}
		if id == "faultsweep" {
			table, err := experiments.FaultSweep(w, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Println(table)
			writeCSV(id, table.CSV())
			return
		}
		if id == "table2" {
			rows, err := experiments.Table2(w)
			if err != nil {
				fatal(err)
			}
			table := experiments.RenderTable2(rows)
			fmt.Println(table)
			fmt.Printf("chosen algorithms in requirement order: %s\n\n",
				strings.Join(experiments.ChosenAlgorithms(rows), " "))
			writeCSV(id, table.CSV())
			return
		}
		fatal(fmt.Errorf("unknown experiment %q", id))
	}

	switch *exp {
	case "all":
		for _, id := range []string{"fig9", "fig10", "fig11", "fig12", "table2", "estimation", "faultsweep"} {
			run(id)
		}
	default:
		run(*exp)
	}

	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
	if w.Metrics != nil {
		fmt.Println("\nmetrics snapshot:")
		if err := w.Metrics.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
