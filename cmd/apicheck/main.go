// Command apicheck guards the public API of the root joinopt package: it
// parses the package source and emits one sorted line per exported API
// element — functions, methods, types, struct fields, interface methods,
// constants, and variables — with parameter and result types rendered but
// names elided (names are not API). The committed API.txt is the reviewed
// surface; `apicheck -check API.txt` exits nonzero with a line diff when
// the source surface drifts, so additions and removals are explicit in
// review rather than discovered by downstream breakage (the in-tree
// equivalent of an apidiff gate, with no dependencies beyond go/ast).
//
// Usage:
//
//	apicheck -dir .                 # print the current surface
//	apicheck -dir . -check API.txt  # diff against the committed surface
//	apicheck -dir . -write API.txt  # regenerate after a reviewed change
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the package to dump")
	check := flag.String("check", "", "compare the surface against this file; exit 1 on drift")
	write := flag.String("write", "", "write the surface to this file")
	flag.Parse()

	lines, err := surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(2)
	}
	out := strings.Join(lines, "\n") + "\n"

	switch {
	case *check != "":
		want, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		if d := diff(strings.Split(strings.TrimRight(string(want), "\n"), "\n"), lines); len(d) > 0 {
			fmt.Fprintf(os.Stderr, "apicheck: public API drifted from %s:\n", *check)
			for _, l := range d {
				fmt.Fprintln(os.Stderr, "  "+l)
			}
			fmt.Fprintf(os.Stderr, "review the change, then regenerate with: go run ./cmd/apicheck -dir . -write %s\n", *check)
			os.Exit(1)
		}
	case *write != "":
		if err := os.WriteFile(*write, []byte(out), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
	default:
		fmt.Print(out)
	}
}

// surface parses the package in dir and returns its exported API, one
// sorted canonical line per element.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") || pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

func declLines(decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		sig := signature(d.Type)
		if d.Recv != nil {
			recv := types.ExprString(d.Recv.List[0].Type)
			// Methods on unexported receivers are not reachable API.
			if !ast.IsExported(strings.TrimLeft(recv, "*")) {
				return nil
			}
			return []string{fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, sig)}
		}
		return []string{fmt.Sprintf("func %s%s", d.Name.Name, sig)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				out = append(out, typeLines(s)...)
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					line := kind + " " + name.Name
					if s.Type != nil {
						line += " " + types.ExprString(s.Type)
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

func typeLines(s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	name := s.Name.Name
	eq := ""
	if s.Assign.IsValid() {
		eq = "= "
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		out := []string{"type " + name + " " + eq + "struct"}
		for _, f := range t.Fields.List {
			ft := types.ExprString(f.Type)
			if len(f.Names) == 0 { // embedded
				if ast.IsExported(strings.TrimLeft(ft, "*")) {
					out = append(out, fmt.Sprintf("embedded %s.%s", name, ft))
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					out = append(out, fmt.Sprintf("field %s.%s %s", name, fn.Name, ft))
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{"type " + name + " " + eq + "interface"}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				out = append(out, fmt.Sprintf("iface %s: embeds %s", name, types.ExprString(m.Type)))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					out = append(out, fmt.Sprintf("iface %s.%s%s", name, mn.Name, signature(m.Type.(*ast.FuncType))))
				}
			}
		}
		return out
	default:
		return []string{"type " + name + " " + eq + types.ExprString(s.Type)}
	}
}

// signature renders a function type with types only: parameter and result
// names are implementation detail, not API.
func signature(ft *ast.FuncType) string {
	return "(" + fieldTypes(ft.Params) + ")" + results(ft.Results)
}

func results(fl *ast.FieldList) string {
	switch {
	case fl == nil || len(fl.List) == 0:
		return ""
	case len(fl.List) == 1 && len(fl.List[0].Names) <= 1:
		return " " + types.ExprString(fl.List[0].Type)
	default:
		return " (" + fieldTypes(fl) + ")"
	}
}

func fieldTypes(fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		t := types.ExprString(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, ", ")
}

// diff returns the removed (-) and added (+) lines between two sorted
// line sets.
func diff(want, got []string) []string {
	inWant := map[string]bool{}
	for _, l := range want {
		inWant[l] = true
	}
	inGot := map[string]bool{}
	for _, l := range got {
		inGot[l] = true
	}
	var out []string
	for _, l := range want {
		if !inGot[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range got {
		if !inWant[l] {
			out = append(out, "+ "+l)
		}
	}
	return out
}
