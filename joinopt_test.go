package joinopt_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"joinopt"
)

var (
	taskOnce sync.Once
	task     *joinopt.Task
	taskErr  error
)

func facadeTask(t *testing.T) *joinopt.Task {
	t.Helper()
	taskOnce.Do(func() {
		task, taskErr = joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 1200, Seed: 2})
	})
	if taskErr != nil {
		t.Fatal(taskErr)
	}
	return task
}

func TestFacadeTaskConstruction(t *testing.T) {
	tk := facadeTask(t)
	r1, r2 := tk.Relations()
	if !strings.Contains(r1, "Headquarters") || !strings.Contains(r2, "Executives") {
		t.Errorf("relations %q, %q", r1, r2)
	}
	d1, d2 := tk.DatabaseSizes()
	if d1 != 1200 || d2 != 1200 {
		t.Errorf("sizes %d, %d", d1, d2)
	}
	if tk.GoldJoinSize() <= 0 {
		t.Error("gold join size must be positive")
	}
}

func TestFacadeExecutePlan(t *testing.T) {
	tk := facadeTask(t)
	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	res, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan),
		joinopt.WithStop(func(p joinopt.Progress) bool { return p.GoodTuples >= 8 }))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcome
	if out.GoodTuples < 8 {
		t.Errorf("stopped with %d good tuples", out.GoodTuples)
	}
	if out.Time <= 0 {
		t.Error("no time charged")
	}
	tuples := out.Tuples()
	if len(tuples) == 0 {
		t.Fatal("no tuples materialized")
	}
	// The labels must agree with the task's gold sets.
	for _, jt := range tuples {
		if jt.Good != tk.Gold(jt) {
			t.Fatalf("tuple %v label disagrees with gold", jt)
		}
	}
}

func TestFacadeExecuteAllAlgorithms(t *testing.T) {
	tk := facadeTask(t)
	plans := []joinopt.Plan{
		{Algorithm: joinopt.IndependentJoin, Theta: [2]float64{0.4, 0.4},
			X: [2]joinopt.Strategy{joinopt.AutoQueryGen, joinopt.FilteredScan}},
		{Algorithm: joinopt.OuterInnerJoin, Theta: [2]float64{0.4, 0.4},
			X: [2]joinopt.Strategy{joinopt.Scan, joinopt.QueryRetrieve}, OuterIdx: 0},
		{Algorithm: joinopt.ZigZagJoin, Theta: [2]float64{0.4, 0.4}},
	}
	for _, plan := range plans {
		res, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan),
			joinopt.WithStop(func(p joinopt.Progress) bool {
				return p.DocsProcessed[0]+p.DocsProcessed[1] >= 400
			}))
		if err != nil {
			t.Fatalf("%s: %v", plan, err)
		}
		if out := res.Outcome; out.DocsProcessed[0]+out.DocsProcessed[1] == 0 {
			t.Errorf("%s processed nothing", plan)
		}
	}
}

func TestFacadeOptimize(t *testing.T) {
	tk := facadeTask(t)
	best, err := tk.Optimize(joinopt.Requirement{TauG: 4, TauB: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible || best.EstimatedGood < 4 {
		t.Errorf("optimize returned %+v", best)
	}
	if best.Plan.Algorithm == "" {
		t.Error("no algorithm chosen")
	}
}

func TestFacadeEvaluatePlans(t *testing.T) {
	tk := facadeTask(t)
	evals, err := tk.EvaluatePlans(joinopt.Requirement{TauG: 4, TauB: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 64 {
		t.Fatalf("plan space %d", len(evals))
	}
	feasible := 0
	for _, e := range evals {
		if e.Feasible {
			feasible++
			if e.EstimatedTime <= 0 {
				t.Errorf("feasible plan %s without time", e.Plan)
			}
		} else if e.Reason == "" {
			t.Errorf("infeasible plan %s without reason", e.Plan)
		}
	}
	if feasible == 0 {
		t.Error("no feasible plans for a modest requirement")
	}
}

func TestFacadeRunAdaptive(t *testing.T) {
	tk := facadeTask(t)
	res, err := tk.Run(context.Background(), joinopt.Requirement{TauG: 8, TauB: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == nil || len(res.Plans) == 0 {
		t.Fatal("adaptive run incomplete")
	}
	if res.Outcome.GoodTuples < 8 {
		t.Errorf("adaptive run delivered %d good tuples", res.Outcome.GoodTuples)
	}
	if res.TotalTime < res.Outcome.Time {
		t.Error("total time must include the pilot")
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	tk := facadeTask(t)
	defer func() { tk.Faults, tk.Retry, tk.Deadline = nil, joinopt.RetryPolicy{}, 0 }()

	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	cleanRes, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	clean := cleanRes.Outcome
	if clean.RetriesSpent != [2]int{} || clean.Degraded {
		t.Fatalf("clean run reports fault telemetry: %+v", clean)
	}

	tk.Faults = joinopt.UniformFaults(5, 0.02)
	faultyRes, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	faulty := faultyRes.Outcome
	if faulty.RetriesSpent == [2]int{} {
		t.Error("fault injection did not engage")
	}
	if faulty.GoodTuples != clean.GoodTuples || faulty.BadTuples != clean.BadTuples {
		t.Errorf("transient faults at rate 0.02 changed the output: (%d, %d) vs (%d, %d)",
			faulty.GoodTuples, faulty.BadTuples, clean.GoodTuples, clean.BadTuples)
	}
	if faulty.Time <= clean.Time {
		t.Error("retry time not charged")
	}

	tk.Faults = nil
	tk.Deadline = clean.Time / 4
	cutRes, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan))
	if !errors.Is(err, joinopt.ErrDeadline) {
		t.Fatalf("deadline-stopped run returned %v, want ErrDeadline", err)
	}
	cut := cutRes.Outcome
	if !cut.DeadlineHit || cut.DocsProcessed[0]+cut.DocsProcessed[1] >= clean.DocsProcessed[0]+clean.DocsProcessed[1] {
		t.Errorf("deadline did not cut the run: %+v", cut)
	}
}

func TestFacadeParseFaultProfile(t *testing.T) {
	if p, err := joinopt.ParseFaultProfile(""); p != nil || err != nil {
		t.Errorf("empty profile = %v, %v; want nil, nil", p, err)
	}
	if p, err := joinopt.ParseFaultProfile("rate=0.1,seed=3"); p == nil || err != nil {
		t.Errorf("valid profile = %v, %v", p, err)
	}
	if _, err := joinopt.ParseFaultProfile("rate=high"); err == nil {
		t.Error("malformed profile must be rejected")
	}
}

func TestFacadeFigures(t *testing.T) {
	tk := facadeTask(t)
	for _, id := range []string{"fig9", "fig12"} {
		text, err := tk.Figure(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(text, "estimated") {
			t.Errorf("%s rendering incomplete", id)
		}
	}
	if _, err := tk.Figure("fig99"); err == nil {
		t.Error("expected error for unknown figure")
	}
}

func TestFacadeMGWorkload(t *testing.T) {
	tk, err := joinopt.NewMGJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := tk.Relations()
	if !strings.Contains(r1, "Mergers") {
		t.Errorf("relation %q", r1)
	}
}

func TestFacadeTaskPairValidation(t *testing.T) {
	if _, err := joinopt.NewTaskPair(joinopt.WorkloadParams{NumDocs: 800}, "HQ", "HQ"); err == nil {
		t.Error("expected error for identical tasks")
	}
}

func TestFacadePlanString(t *testing.T) {
	p := joinopt.Plan{Algorithm: joinopt.ZigZagJoin, Theta: [2]float64{0.4, 0.8}}
	if !strings.Contains(p.String(), "ZGJN") {
		t.Errorf("plan string %q", p)
	}
}

func TestFacadeThreeWay(t *testing.T) {
	tw, err := joinopt.NewThreeWay(joinopt.WorkloadParams{NumDocs: 800, Seed: 6}, "MG", "HQ", "EX")
	if err != nil {
		t.Fatal(err)
	}
	rels := tw.Relations()
	if !strings.Contains(rels[0], "Mergers") || !strings.Contains(rels[2], "Executives") {
		t.Errorf("relations %v", rels)
	}
	predGood, predBad, err := tw.Predict(0.4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tw.Execute([3]float64{0.4, 0.4, 0.4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.GoodTuples == 0 || out.BadTuples == 0 {
		t.Fatalf("degenerate 3-way output %+v", out)
	}
	for _, pair := range [][2]float64{{predGood, float64(out.GoodTuples)}, {predBad, float64(out.BadTuples)}} {
		r := pair[0] / pair[1]
		if r < 0.3 || r > 3.0 {
			t.Errorf("3-way prediction ratio %.2f (pred %.0f vs actual %.0f)", r, pair[0], pair[1])
		}
	}
	// The stop condition halts early.
	partial, err := tw.Execute([3]float64{0.4, 0.4, 0.4}, func(p joinopt.ThreeWayProgress) bool {
		return p.DocsProcessed[0] >= 100
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.DocsProcessed[0] > 110 {
		t.Errorf("stop ignored: %d docs", partial.DocsProcessed[0])
	}
}

func TestFacadePreferences(t *testing.T) {
	tk := facadeTask(t)
	best, req, err := tk.OptimizePrecision(8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if req.TauG != 8 || req.TauB != 24 {
		t.Errorf("precision mapping %+v", req)
	}
	if !best.Feasible {
		t.Error("precision preference infeasible")
	}

	bestR, reqR, err := tk.OptimizeRecall(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if reqR.TauG <= 0 || !bestR.Feasible {
		t.Errorf("recall preference failed: %+v / %+v", bestR, reqR)
	}

	budgeted, err := tk.OptimizeWithinBudget(3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.EstimatedTime > 3000 {
		t.Errorf("budget exceeded: %v", budgeted.EstimatedTime)
	}
	if budgeted.EstimatedGood <= 0 {
		t.Error("budgeted plan predicts no output")
	}
}

func TestFacadeOptimizeRobust(t *testing.T) {
	tk := facadeTask(t)
	point, err := tk.Optimize(joinopt.Requirement{TauG: 16, TauB: 400})
	if err != nil {
		t.Fatal(err)
	}
	robust, err := tk.OptimizeRobust(joinopt.Requirement{TauG: 16, TauB: 400}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if robust.EstimatedTime < point.EstimatedTime-1e-9 {
		t.Errorf("robust plan cheaper than point plan: %v vs %v", robust.EstimatedTime, point.EstimatedTime)
	}
}

func TestFacadeVerification(t *testing.T) {
	tk := facadeTask(t)
	acceptGood, rejectBad, err := tk.VerifierAccuracy(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for side := 0; side < 2; side++ {
		if acceptGood[side] < 0.5 || rejectBad[side] < 0.5 {
			t.Errorf("side %d verifier does not separate: accept %.2f reject %.2f",
				side, acceptGood[side], rejectBad[side])
		}
	}
	// Verification raises the precision of a permissive join's output.
	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	res, err := tk.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcome
	tuples := out.Tuples()
	rawPrec := float64(out.GoodTuples) / float64(out.GoodTuples+out.BadTuples)
	kept, keptGood := 0, 0
	for _, jt := range tuples {
		ok, err := tk.VerifyJoinTuple(jt, 0.6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			kept++
			if jt.Good {
				keptGood++
			}
		}
	}
	if kept == 0 {
		t.Fatal("verification rejected everything")
	}
	verifiedPrec := float64(keptGood) / float64(kept)
	if verifiedPrec <= rawPrec {
		t.Errorf("verification should raise precision: %.2f -> %.2f", rawPrec, verifiedPrec)
	}
}

func TestFacadeTableII(t *testing.T) {
	// TableII sweeps all 64 plans; run it on a small dedicated task.
	tk, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 800, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	text, err := tk.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "chosen plan") || !strings.Contains(text, "τg") {
		t.Errorf("Table II rendering incomplete:\n%s", text[:200])
	}
}
