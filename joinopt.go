// Package joinopt is a quality-aware join optimizer for relations extracted
// from text, reproducing "Join Optimization of Information Extraction
// Output: Quality Matters!" (Jain, Ipeirotis, Doan, Gravano — ICDE 2009).
//
// Unlike relational join optimization, joining the output of information
// extraction (IE) systems must optimize for *output quality* as well as
// execution time: different join execution plans — combinations of IE
// system configurations θ, document retrieval strategies (Scan, Filtered
// Scan, Automatic Query Generation), and join algorithms (Independent,
// Outer/Inner, Zig-Zag) — produce vastly different numbers of good and bad
// join tuples. This package exposes:
//
//   - synthetic text-database workloads with controlled extraction-quality
//     characteristics (NewHQJoinEX),
//   - the three join execution algorithms, runnable under any plan
//     (Task.Run with WithPlan),
//   - analytical models predicting each plan's output quality and time
//     (Task.EvaluatePlans),
//   - the quality-aware optimizer, including the fully adaptive variant
//     that estimates database statistics on the fly (Task.Optimize,
//     Task.Run),
//   - execution observability — structured tracing (WithTracer) and a
//     metrics registry with Prometheus-text export (WithMetrics) — with
//     zero overhead when detached,
//   - the experiment drivers regenerating every figure and table of
//     the paper's evaluation (Task.Figure, Task.TableII),
//   - and declarative N-way join queries (NewQuery): a query graph over
//     2..MaxQueryRelations extracted relations, planned by a DPccp-style
//     join-tree enumerator with the 2^n-class quality composition and
//     executed on the tree executor (the binary join is the two-relation
//     special case of the same API).
package joinopt

import (
	"fmt"
	"sync"

	"joinopt/internal/experiments"
	"joinopt/internal/faults"
	"joinopt/internal/join"
	"joinopt/internal/optimizer"
	"joinopt/internal/pipeline"
	"joinopt/internal/relation"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
	"joinopt/internal/verify"
	"joinopt/internal/workload"
)

// Algorithm names a join execution algorithm (§IV of the paper).
type Algorithm string

// The join algorithms.
const (
	IndependentJoin Algorithm = "IDJN" // extract both relations independently
	OuterInnerJoin  Algorithm = "OIJN" // query the inner relation per outer value
	ZigZagJoin      Algorithm = "ZGJN" // interleaved querying of both relations
)

// Strategy names a document retrieval strategy (§III-B).
type Strategy string

// The document retrieval strategies.
const (
	Scan          Strategy = "SC"
	FilteredScan  Strategy = "FS"
	AutoQueryGen  Strategy = "AQG"
	QueryRetrieve Strategy = "" // placeholder for sides reached by value queries
)

// Plan is a join execution plan ⟨E1⟨θ1⟩, E2⟨θ2⟩, X1, X2, JN⟩
// (Definition 3.1).
type Plan struct {
	Algorithm Algorithm
	Theta     [2]float64
	X         [2]Strategy
	// OuterIdx selects the Outer/Inner join's outer relation (0 or 1).
	OuterIdx int
}

// String renders the plan compactly.
func (p Plan) String() string { return p.spec().String() }

func (p Plan) spec() optimizer.PlanSpec {
	return optimizer.PlanSpec{
		JN:       optimizer.Algorithm(p.Algorithm),
		Theta:    p.Theta,
		X:        [2]retrieval.Kind{retrieval.Kind(p.X[0]), retrieval.Kind(p.X[1])},
		OuterIdx: p.OuterIdx,
	}
}

func planFromSpec(s optimizer.PlanSpec) Plan {
	return Plan{
		Algorithm: Algorithm(s.JN),
		Theta:     s.Theta,
		X:         [2]Strategy{Strategy(s.X[0]), Strategy(s.X[1])},
		OuterIdx:  s.OuterIdx,
	}
}

// Requirement is a user quality preference (§III-C): at least TauG good
// join tuples with at most TauB bad ones.
type Requirement struct {
	TauG int
	TauB int
}

// WorkloadParams scales a synthetic workload.
type WorkloadParams struct {
	// NumDocs is the number of documents in the first text database
	// (minimum 400), and the second unless NumDocs2 is set.
	NumDocs int
	// NumDocs2, when positive, sizes the second database differently (same
	// relation content in a bigger haystack).
	NumDocs2 int
	// Seed drives all generation randomness; equal seeds reproduce equal
	// workloads.
	Seed int64
	// TopK caps the search interface's results per query; 0 selects a
	// size-proportional default.
	TopK int
}

// FaultProfile configures deterministic, seedable fault injection on a
// task's databases, retrieval strategies, and classifiers. A zero-rate
// profile is provably transparent: execution is identical to an uninjected
// run (the join package's property tests pin this).
type FaultProfile struct {
	p *faults.Profile
}

// FaultProfileHelp is the canonical help text for flags and API fields that
// accept a ParseFaultProfile string; it lists the accepted keys.
var FaultProfileHelp = faults.FlagHelp

// ParseFaultProfile builds a fault profile from a compact string of
// comma-separated key=value pairs, e.g. "rate=0.05,seed=9,burst=2,cost=2".
// Keys: seed, rate, fetch, next, classify, trunc, stall, cost, burst,
// permanent (see FaultProfileHelp). Errors name the offending key or value
// and list the accepted vocabulary. An empty string yields nil (no
// injection).
func ParseFaultProfile(s string) (*FaultProfile, error) {
	p, err := faults.Parse(s)
	if err != nil || p == nil {
		return nil, err
	}
	return &FaultProfile{p: p}, nil
}

// UniformFaults injects transient single-call faults at the given rate on
// every document fetch, retrieval pull, and classification of both sides,
// deterministically derived from seed.
func UniformFaults(seed int64, rate float64) *FaultProfile {
	return &FaultProfile{p: faults.Uniform(seed, rate)}
}

// RetryPolicy governs how executions recover from transient substrate
// failures. The zero value selects the defaults (3 retries with capped
// exponential backoff); MaxRetries -1 disables retrying. FailureBudget, when
// positive, aborts an execution once that many documents per side were lost
// to exhausted retries; 0 tolerates unlimited loss (skipped documents are
// still accounted in the Outcome).
type RetryPolicy struct {
	MaxRetries    int
	BaseDelay     float64
	MaxDelay      float64
	FailureBudget int
}

// Task is an extraction join task: text databases, IE systems, trained
// retrieval machinery, and gold labels for evaluation. NewTaskPair (and the
// two-relation NewQuery form) builds a binary task with the paper's full
// plan space; NewQuery over three or more relations builds an n-ary task
// planned by the DP join-tree enumerator. Methods documented as
// two-relation-only return a descriptive error on n-ary tasks.
//
// A Task is safe for concurrent Run calls (see Run for the exact contract);
// its exported configuration fields must be set before the first concurrent
// use and not mutated while runs are in flight.
type Task struct {
	w *workload.Workload

	// mw and joins are set instead of w on n-ary query tasks.
	mw    *workload.MultiWorkload
	joins [][2]int

	// Workers bounds the optimizer's parallel plan-space evaluation
	// (0 = one worker per CPU, 1 = sequential). Any setting returns the
	// identical plan choice; see the optimizer package's determinism
	// guarantee.
	Workers int

	// Faults, when set, injects deterministic substrate failures into every
	// execution of this task; Retry governs recovery, and Deadline — a
	// cost-model time, 0 = none — stops executions gracefully when exceeded.
	Faults   *FaultProfile
	Retry    RetryPolicy
	Deadline float64

	// ExecWorkers runs every execution of this task with a pipelined
	// extraction pool of that many workers: document extraction overlaps
	// ahead of the in-order consumer while tuples, cost accounting, traces,
	// and snapshots stay bit-identical to the sequential execution (0 or 1 =
	// sequential wall-clock behaviour).
	ExecWorkers int

	// ExtractCacheBytes, when positive, shares one byte-bounded extraction
	// cache across every execution of a Run — pilot, abandoned, and final
	// plans alike — so re-processing a document at the same θ is charged
	// zero extraction time. Inspect it with ExtractionCacheStats.
	ExtractCacheBytes int64

	// Shards, when >= 2, partitions each text database into that many
	// deterministic shards and runs every execution of this task as a
	// scatter-gather over per-shard pipelined executors, each owning its
	// slice of the shared extraction cache (ExtractCacheBytes splits evenly
	// across shards). Output — tuples, counters, traces — is bit-identical
	// to the unsharded run at any shard count; what changes is wall-clock
	// overlap, which the optimizer models with the measured shard-scaling
	// curve. 0 or 1 = unsharded.
	Shards int

	// MergeCost (n-ary tasks) is the cost-model time charged per expected
	// intermediate tuple at every internal node of the executed join tree —
	// the knob the DP enumerator's tree choice trades against extraction
	// effort. Zero (the default) makes tuple composition free, matching the
	// binary executors' accounting.
	MergeCost float64

	cacheMu   sync.Mutex
	cache     *pipeline.Cache
	cacheCap  int64
	cacheTier pipeline.Tier

	// shardSet memo: the persistent per-shard cache slices of sharded runs,
	// reused (warm) while the shard count and capacity are unchanged.
	shards    *shard.Set
	shardsN   int
	shardsCap int64

	verifierMu sync.Mutex
	verifiers  map[verifierKey]*verify.TemplateVerifier
}

// CacheStats is a point-in-time snapshot of the shared extraction cache's
// counters (hits, misses, evictions, resident bytes and entries).
type CacheStats = pipeline.CacheStats

// ExtractionCacheStats returns the current counters of the task's shared
// extraction cache — the single cache of unsharded runs plus the per-shard
// slices of sharded ones, summed. The zero value is returned when no cache
// is configured. It is safe to call concurrently with in-flight Run calls:
// the snapshot is internally consistent, though counters advance as runs
// progress.
func (t *Task) ExtractionCacheStats() CacheStats {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	stats := t.cache.Stats()
	if t.shards != nil {
		ss := t.shards.Stats()
		stats.Hits += ss.Hits
		stats.Misses += ss.Misses
		stats.Evictions += ss.Evictions
		stats.Bytes += ss.Bytes
		stats.Entries += ss.Entries
		stats.TierHits += ss.TierHits
	}
	return stats
}

// SetExtractCacheTier attaches a second cache level behind the task's
// shared extraction cache — typically a disk store that survives process
// restarts, so a restarted daemon lazily re-warms from everything a crashed
// one had paid for. Sharded runs get the same tier under every shard slice
// (their key spaces are disjoint). Attach before runs start; nil detaches.
func (t *Task) SetExtractCacheTier(tier pipeline.Tier) {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	t.cacheTier = tier
	if t.cache != nil {
		t.cache.SetTier(tier)
	}
	t.shards.SetTier(tier)
}

// extractCache resolves the shared cache at the requested capacity, reusing
// the existing cache (and its contents) while the capacity is unchanged.
func (t *Task) extractCache(bytes int64) *pipeline.Cache {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if bytes <= 0 {
		t.cache, t.cacheCap = nil, 0
		return nil
	}
	if t.cache == nil || t.cacheCap != bytes {
		t.cache = pipeline.NewCache(bytes)
		t.cache.SetTier(t.cacheTier)
		t.cacheCap = bytes
	}
	return t.cache
}

// shardSet resolves the persistent per-shard cache layout for sharded runs,
// reusing the existing set (and its warm slices) while the shard count and
// capacity are unchanged. Returns nil below 2 shards.
func (t *Task) shardSet(bytes int64, shards int) *shard.Set {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if shards < 2 {
		return nil
	}
	if t.shards == nil || t.shardsN != shards || t.shardsCap != bytes {
		t.shards = shard.NewSet(shard.Partition{N: shards}, bytes)
		t.shards.SetTier(t.cacheTier)
		t.shardsN, t.shardsCap = shards, bytes
	}
	return t.shards
}

// NewHQJoinEX builds the paper's primary workload: the Headquarters
// ⟨Company, Location⟩ relation hosted on one database joined with the
// Executives⟨Company, CEO⟩ relation hosted on another.
func NewHQJoinEX(p WorkloadParams) (*Task, error) {
	return NewTaskPair(p, "HQ", "EX")
}

// NewMGJoinEX builds the workload of the paper's motivating Example 1.1:
// Mergers⟨Company, MergedWith⟩ (a SeekingAlpha-like blog database) joined
// with Executives⟨Company, CEO⟩ (a WSJ-like archive).
func NewMGJoinEX(p WorkloadParams) (*Task, error) {
	return NewTaskPair(p, "MG", "EX")
}

// NewTaskPair builds a workload joining any two of the standard extraction
// tasks: "HQ" (Headquarters), "EX" (Executives), "MG" (Mergers).
func NewTaskPair(p WorkloadParams, rel1, rel2 string) (*Task, error) {
	if p.NumDocs == 0 {
		p.NumDocs = workload.DefaultParams.NumDocs
	}
	if p.Seed == 0 {
		p.Seed = workload.DefaultParams.Seed
	}
	w, err := workload.Pair(workload.Params{NumDocs: p.NumDocs, NumDocs2: p.NumDocs2, Seed: p.Seed, TopK: p.TopK}, rel1, rel2)
	if err != nil {
		return nil, err
	}
	return &Task{w: w}, nil
}

// Relations names the first two extracted relations; RelationNames covers
// every relation of an n-ary task.
func (t *Task) Relations() (r1, r2 string) {
	names := t.RelationNames()
	return names[0], names[1]
}

// DatabaseSizes returns the document counts of the first two databases;
// Sizes covers every database of an n-ary task.
func (t *Task) DatabaseSizes() (d1, d2 int) {
	sizes := t.Sizes()
	return sizes[0], sizes[1]
}

// JoinTuple is one labelled join result ⟨A, B, C⟩: ⟨A, B⟩ ∈ R1,
// ⟨A, C⟩ ∈ R2; Good reports whether both contributing tuples are correct.
type JoinTuple struct {
	A, B, C string
	Good    bool
}

// Outcome summarizes an executed join.
type Outcome struct {
	Plan Plan

	// GoodTuples and BadTuples are the output composition under the
	// paper's semantics (Σ_a gr1(a)·gr2(a) and its complement).
	GoodTuples int
	BadTuples  int

	// Time is the cost-model execution time (documents retrieved,
	// processed, filtered, and queries issued, each charged with the
	// workload's per-operation constants).
	Time float64

	// CacheSaved is the per-side extraction time the shared cache made
	// free. Time + ΣCacheSaved is invariant under cache warmth: a run over
	// a warm cache (a later job on the same workload, or a crash-recovery
	// resume over a disk tier) bills less Time but the same total.
	CacheSaved [2]float64

	// Work counters per side.
	DocsProcessed [2]int
	DocsRetrieved [2]int
	Queries       [2]int

	// Failure telemetry (meaningful under fault injection): documents lost
	// after exhausting retries, retries consumed, whether any loss left the
	// run with an incomplete view of the databases, and whether the deadline
	// cut it short.
	DocsFailed   [2]int
	RetriesSpent [2]int
	Degraded     bool
	DeadlineHit  bool

	state *join.State
}

// Tuples returns the labelled join tuples in deterministic order.
func (o *Outcome) Tuples() []JoinTuple {
	if o.state == nil {
		return nil
	}
	src := o.state.Result.Tuples()
	out := make([]JoinTuple, len(src))
	for i, lt := range src {
		out[i] = JoinTuple{A: lt.Tuple.A, B: lt.Tuple.B, C: lt.Tuple.C, Good: lt.Good}
	}
	return out
}

func outcomeOf(plan Plan, st *join.State) *Outcome {
	return &Outcome{
		Plan:          plan,
		GoodTuples:    st.GoodPairs,
		BadTuples:     st.BadPairs,
		Time:          st.Time,
		CacheSaved:    st.CacheSaved,
		DocsProcessed: st.DocsProcessed,
		DocsRetrieved: st.DocsRetrieved,
		Queries:       st.Queries,
		DocsFailed:    st.DocsFailed,
		RetriesSpent:  st.RetriesSpent,
		Degraded:      st.Degraded,
		DeadlineHit:   st.DeadlineHit,
		state:         st,
	}
}

// StopCondition inspects a running execution after each step; returning
// true stops it. Progress carries the live output composition and work.
type StopCondition func(Progress) bool

// Progress is the observable state of a running execution.
type Progress struct {
	GoodTuples, BadTuples int
	DocsProcessed         [2]int
	DocsRetrieved         [2]int
	Queries               [2]int
	Time                  float64
}

// PlanEvaluation is the optimizer's model-based assessment of one plan.
type PlanEvaluation struct {
	Plan     Plan
	Feasible bool
	// EstimatedGood/Bad are the predicted output composition at the
	// minimal effort meeting the requirement.
	EstimatedGood float64
	EstimatedBad  float64
	EstimatedTime float64
	Reason        string // why the plan is infeasible, when it is
}

// Knobs are the IE knob settings explored by the optimizer.
var Knobs = []float64{0.4, 0.8}

// EvaluatePlans assesses the full two-relation plan space against a
// requirement using perfect-knowledge model parameters measured on the
// task's databases — the configuration of the paper's model-accuracy
// experiments.
func (t *Task) EvaluatePlans(req Requirement) ([]PlanEvaluation, error) {
	if err := t.binaryOnly("EvaluatePlans"); err != nil {
		return nil, err
	}
	in, err := t.w.TrueInputs(Knobs)
	if err != nil {
		return nil, err
	}
	plans := optimizer.Enumerate(Knobs)
	out := make([]PlanEvaluation, 0, len(plans))
	for _, p := range plans {
		ev, err := optimizer.Evaluate(p, in, optimizer.Requirement(req))
		if err != nil {
			return nil, err
		}
		out = append(out, PlanEvaluation{
			Plan:          planFromSpec(ev.Plan),
			Feasible:      ev.Feasible,
			EstimatedGood: ev.Quality.Good,
			EstimatedBad:  ev.Quality.Bad,
			EstimatedTime: ev.Time,
			Reason:        ev.Reason,
		})
	}
	return out, nil
}

// Optimize picks the fastest two-relation plan predicted to meet the
// requirement, using perfect-knowledge parameters. Use Run for the
// end-to-end variant that estimates parameters on the fly, and
// OptimizeQuery for the arity-general form.
func (t *Task) Optimize(req Requirement) (PlanEvaluation, error) {
	if err := t.binaryOnly("Optimize"); err != nil {
		return PlanEvaluation{}, err
	}
	in, err := t.w.TrueInputs(Knobs)
	if err != nil {
		return PlanEvaluation{}, err
	}
	in.Workers = t.Workers
	best, _, err := optimizer.Choose(optimizer.Enumerate(Knobs), in, optimizer.Requirement(req))
	if err != nil {
		return PlanEvaluation{}, err
	}
	return PlanEvaluation{
		Plan:          planFromSpec(best.Plan),
		Feasible:      true,
		EstimatedGood: best.Quality.Good,
		EstimatedBad:  best.Quality.Bad,
		EstimatedTime: best.Time,
	}, nil
}

// AdaptiveCheckpoint is an opaque resumable snapshot of an interrupted
// adaptive run (see Task.Run and WithCheckpoint).
type AdaptiveCheckpoint struct {
	ck *optimizer.Checkpoint
}

// Figure regenerates one of the paper's evaluation figures ("fig9",
// "fig10", "fig11", "fig12") over a two-relation task and returns its text
// rendering (estimated vs actual series).
func (t *Task) Figure(id string) (string, error) {
	if err := t.binaryOnly("Figure"); err != nil {
		return "", err
	}
	switch id {
	case "fig9":
		f, err := experiments.Fig9(t.w)
		return render(f, err)
	case "fig10":
		f, err := experiments.Fig10(t.w)
		return render(f, err)
	case "fig11":
		f, err := experiments.Fig11(t.w)
		return render(f, err)
	case "fig12":
		f, err := experiments.Fig12(t.w)
		return render(f, err)
	default:
		return "", fmt.Errorf("joinopt: unknown figure %q (want fig9..fig12)", id)
	}
}

// TableII regenerates the paper's Table II over a two-relation task and
// returns its text rendering.
func (t *Task) TableII() (string, error) {
	if err := t.binaryOnly("TableII"); err != nil {
		return "", err
	}
	rows, err := experiments.Table2(t.w)
	if err != nil {
		return "", err
	}
	return experiments.RenderTable2(rows).String(), nil
}

func render(f interface{ String() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return f.String(), nil
}

// golds returns the task's gold sets in query order.
func (t *Task) golds() []*relation.Gold {
	if t.mw != nil {
		return t.mw.Golds()
	}
	return []*relation.Gold{t.w.DB[0].Gold(t.w.Task[0]), t.w.DB[1].Gold(t.w.Task[1])}
}

// GoldJoinSize returns the number of good join tuples derivable from the
// gold sets at full extraction — an upper bound on any plan's good output.
// On an n-ary task it counts the k-way good composition.
func (t *Task) GoldJoinSize() int {
	golds := t.golds()
	counts := make([]map[string]int, len(golds))
	for i, g := range golds {
		counts[i] = map[string]int{}
		for tup := range g.Good {
			counts[i][tup.A1]++
		}
	}
	total := 0
	for v, c := range counts[0] {
		prod := c
		for i := 1; i < len(counts); i++ {
			prod *= counts[i][v]
		}
		total += prod
	}
	return total
}

// Gold reports whether a two-relation join tuple is good per the gold sets
// (always false on n-ary tasks, whose tuples are not ⟨A, B, C⟩-shaped).
func (t *Task) Gold(jt JoinTuple) bool {
	if t.w == nil {
		return false
	}
	g1 := t.w.DB[0].Gold(t.w.Task[0])
	g2 := t.w.DB[1].Gold(t.w.Task[1])
	return g1.IsGood(relation.Tuple{A1: jt.A, A2: jt.B}) && g2.IsGood(relation.Tuple{A1: jt.A, A2: jt.C})
}

// OptimizeRobust is Optimize with a z-sigma robustness margin (§VI's
// robustness checking): a plan qualifies only if its sigma-discounted good
// output still reaches τg and its sigma-inflated bad output stays within
// τb. Larger sigma yields more conservative (and typically costlier) plans.
func (t *Task) OptimizeRobust(req Requirement, sigma float64) (PlanEvaluation, error) {
	if err := t.binaryOnly("OptimizeRobust"); err != nil {
		return PlanEvaluation{}, err
	}
	in, err := t.w.TrueInputs(Knobs)
	if err != nil {
		return PlanEvaluation{}, err
	}
	in.RobustSigma = sigma
	in.Workers = t.Workers
	best, _, err := optimizer.Choose(optimizer.Enumerate(Knobs), in, optimizer.Requirement(req))
	if err != nil {
		return PlanEvaluation{}, err
	}
	return PlanEvaluation{
		Plan:          planFromSpec(best.Plan),
		Feasible:      true,
		EstimatedGood: best.Quality.Good,
		EstimatedBad:  best.Quality.Bad,
		EstimatedTime: best.Time,
	}, nil
}

// OptimizePrecision picks the fastest plan delivering at least good tuples
// at output precision p — the paper's "minimum precision" preference,
// mapped onto the (τg, τb) model.
func (t *Task) OptimizePrecision(good int, p float64) (PlanEvaluation, Requirement, error) {
	return t.optimizePreferred(optimizer.MinPrecision{Good: good, P: p})
}

// OptimizeRecall picks the fastest plan delivering at least the given
// fraction of the achievable good join tuples — the paper's "minimum
// recall at the end of execution" preference.
func (t *Task) OptimizeRecall(recall float64) (PlanEvaluation, Requirement, error) {
	return t.optimizePreferred(optimizer.MinRecall{Recall: recall})
}

func (t *Task) optimizePreferred(pref optimizer.Preference) (PlanEvaluation, Requirement, error) {
	if err := t.binaryOnly("preference optimization"); err != nil {
		return PlanEvaluation{}, Requirement{}, err
	}
	in, err := t.w.TrueInputs(Knobs)
	if err != nil {
		return PlanEvaluation{}, Requirement{}, err
	}
	in.Workers = t.Workers
	best, req, err := optimizer.ChoosePreferred(optimizer.Enumerate(Knobs), in, pref)
	if err != nil {
		return PlanEvaluation{}, Requirement(req), err
	}
	return PlanEvaluation{
		Plan:          planFromSpec(best.Plan),
		Feasible:      true,
		EstimatedGood: best.Quality.Good,
		EstimatedBad:  best.Quality.Bad,
		EstimatedTime: best.Time,
	}, Requirement(req), nil
}

// OptimizeWithinBudget maximizes the predicted good output within a hard
// execution-time budget — the paper's time-budget preference. maxBadPerGood
// bounds the output's bad-to-good ratio (≤ 0 disables the constraint).
func (t *Task) OptimizeWithinBudget(budget, maxBadPerGood float64) (PlanEvaluation, error) {
	if err := t.binaryOnly("OptimizeWithinBudget"); err != nil {
		return PlanEvaluation{}, err
	}
	in, err := t.w.TrueInputs(Knobs)
	if err != nil {
		return PlanEvaluation{}, err
	}
	best, err := optimizer.ChooseWithinBudget(optimizer.Enumerate(Knobs), in, budget, maxBadPerGood)
	if err != nil {
		return PlanEvaluation{}, err
	}
	return PlanEvaluation{
		Plan:          planFromSpec(best.Plan),
		Feasible:      true,
		EstimatedGood: best.Quality.Good,
		EstimatedBad:  best.Quality.Bad,
		EstimatedTime: best.Time,
	}, nil
}
