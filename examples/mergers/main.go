// Mergers ⋈ Executives — the paper's motivating Example 1.1.
//
// A financial analyst asks for all companies that recently merged, together
// with their CEOs. Two IE systems extract Mergers⟨Company, MergedWith⟩ from
// a blog-like database and Executives⟨Company, CEO⟩ from a newspaper-like
// archive, and the join stitches the answers together. Extraction is noisy:
// erroneous base tuples (like the paper's ⟨Microsoft, Symantec⟩) join with
// correct ones and contaminate the result, so the example contrasts the
// output quality of a permissive and a strict IE configuration — the
// quality dimension relational optimizers never face.
//
//	go run ./examples/mergers
package main

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

func main() {
	task, err := joinopt.NewMGJoinEX(joinopt.WorkloadParams{NumDocs: 2000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	r1, r2 := task.Relations()
	fmt.Printf("analyst query: merged companies with their CEOs\n")
	fmt.Printf("join task:     %s ⋈ %s\n\n", r1, r2)

	// The same Independent Join under two knob configurations: permissive
	// extraction (minSim 0.4) versus strict extraction (minSim 0.8).
	for _, theta := range []float64{0.4, 0.8} {
		plan := joinopt.Plan{
			Algorithm: joinopt.IndependentJoin,
			Theta:     [2]float64{theta, theta},
			X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
		}
		res, err := task.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan))
		if err != nil {
			log.Fatal(err)
		}
		out := res.Outcome
		precision := float64(out.GoodTuples) / float64(out.GoodTuples+out.BadTuples)
		fmt.Printf("minSim=%.1f: %4d good + %4d bad join tuples (precision %.2f), time %.0f\n",
			theta, out.GoodTuples, out.BadTuples, precision, out.Time)
		if theta == 0.4 {
			// Show how one erroneous extraction contaminates the join, as
			// in Figure 1 of the paper.
			shown := 0
			for _, t := range out.Tuples() {
				if !t.Good && shown < 3 {
					fmt.Printf("  contaminated result: <%s merged-with %s, CEO %s>\n", t.A, t.B, t.C)
					shown++
				}
			}
		}
		fmt.Println()
	}

	fmt.Println("The strict configuration buys precision with recall — the trade-off")
	fmt.Println("the quality-aware optimizer navigates automatically:")
	best, err := task.Optimize(joinopt.Requirement{TauG: 20, TauB: 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for τg=20, τb=40 the optimizer picks: %s\n", best.Plan)
}
