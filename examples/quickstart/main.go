// Quickstart: build a synthetic extraction-join task, let the quality-aware
// optimizer pick a plan for a user requirement, and execute it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

func main() {
	// A task joins two relations extracted from two text databases:
	// Headquarters(Company, Location) ⋈ Executives(Company, CEO).
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	r1, r2 := task.Relations()
	fmt.Printf("join task: %s ⋈ %s\n", r1, r2)

	// The user requirement: at least 16 good join tuples, at most 160 bad
	// ones (§III-C of the paper).
	req := joinopt.Requirement{TauG: 16, TauB: 160}

	// The optimizer evaluates every execution plan — join algorithm ×
	// IE knob settings × retrieval strategies — with the analytical quality
	// and time models, and picks the fastest plan predicted to meet the
	// requirement.
	best, err := task.Optimize(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen plan:  %s\n", best.Plan)
	fmt.Printf("predicted:    good=%.0f bad=%.0f time=%.0f\n",
		best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)

	// Execute the chosen plan until the good-tuple target is reached.
	res, err := task.Run(context.Background(), req, joinopt.WithPlan(best.Plan),
		joinopt.WithStop(func(p joinopt.Progress) bool {
			return p.GoodTuples >= req.TauG
		}))
	if err != nil {
		log.Fatal(err)
	}
	out := res.Outcome
	fmt.Printf("actual:       good=%d bad=%d time=%.0f\n", out.GoodTuples, out.BadTuples, out.Time)

	// Show a few join results, graded against the generator's gold truth.
	fmt.Println("sample output:")
	for i, t := range out.Tuples() {
		if i == 5 {
			break
		}
		mark := "✓"
		if !t.Good {
			mark = "✗"
		}
		fmt.Printf("  %s <%s | %s | %s>\n", mark, t.A, t.B, t.C)
	}
}
