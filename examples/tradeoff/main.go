// Trade-off sweep: how the optimizer's plan choice migrates as the user's
// quality requirement grows — from cheap query-based plans that sample a
// few documents to scan-based plans that process whole databases (the
// pattern of the paper's Table II).
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

func main() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 2000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gold join size: %d good tuples derivable at perfect extraction\n\n", task.GoldJoinSize())
	fmt.Printf("%-6s %-6s  %-34s %10s %10s %10s\n", "τg", "τb", "chosen plan", "est good", "est bad", "est time")

	for _, req := range []joinopt.Requirement{
		{TauG: 2, TauB: 30},
		{TauG: 8, TauB: 60},
		{TauG: 32, TauB: 160},
		{TauG: 96, TauB: 800},
		{TauG: 200, TauB: 2000},
	} {
		best, err := task.Optimize(req)
		if err != nil {
			fmt.Printf("%-6d %-6d  no feasible plan: %v\n", req.TauG, req.TauB, err)
			continue
		}
		fmt.Printf("%-6d %-6d  %-34s %10.0f %10.0f %10.0f\n",
			req.TauG, req.TauB, best.Plan, best.EstimatedGood, best.EstimatedBad, best.EstimatedTime)
	}

	// Verify the cheapest and the costliest choices by executing them.
	fmt.Println("\nexecuting the extremes:")
	for _, req := range []joinopt.Requirement{{TauG: 2, TauB: 30}, {TauG: 200, TauB: 2000}} {
		best, err := task.Optimize(req)
		if err != nil {
			continue
		}
		res, err := task.Run(context.Background(), req, joinopt.WithPlan(best.Plan),
			joinopt.WithStop(func(p joinopt.Progress) bool {
				return p.GoodTuples >= req.TauG
			}))
		if err != nil {
			log.Fatal(err)
		}
		out := res.Outcome
		fmt.Printf("τg=%-4d: %s → actual good=%d bad=%d time=%.0f (docs processed %v)\n",
			req.TauG, best.Plan, out.GoodTuples, out.BadTuples, out.Time, out.DocsProcessed)
	}
}
