// Adaptive optimization: the end-to-end §VI protocol with no prior
// knowledge of the databases. The optimizer scans a small pilot window,
// infers the database statistics by maximum likelihood (power-law value
// frequencies, document partition, value overlap — all without any tuple
// verification), picks a plan, and re-optimizes at checkpoints. The example
// compares the adaptive run's total cost against the naive full-scan plan.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

func main() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 2000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	req := joinopt.Requirement{TauG: 24, TauB: 240}
	fmt.Printf("requirement: at least %d good join tuples, at most %d bad\n\n", req.TauG, req.TauB)

	ctx := context.Background()
	res, err := task.Run(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adaptive optimizer decisions:")
	for i, p := range res.Plans {
		fmt.Printf("  %d. %s\n", i+1, p)
	}
	fmt.Printf("adaptive outcome: good=%d bad=%d, total time %.0f (incl. pilot)\n\n",
		res.Outcome.GoodTuples, res.Outcome.BadTuples, res.TotalTime)

	// The naive baseline: scan and process both databases completely with
	// the permissive knob setting, stopping at the same good-tuple target.
	naive := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	base, err := task.Run(ctx, req, joinopt.WithPlan(naive),
		joinopt.WithStop(func(p joinopt.Progress) bool {
			return p.GoodTuples >= req.TauG
		}))
	if err != nil {
		log.Fatal(err)
	}
	out := base.Outcome
	fmt.Printf("naive full-scan plan to the same target: good=%d bad=%d, time %.0f\n",
		out.GoodTuples, out.BadTuples, out.Time)
	fmt.Printf("adaptive speedup over naive: %.1fx\n", out.Time/res.TotalTime)
}
