// Output verification — the evaluation-side substrate of §VII. Extraction
// output is noisy; before handing results to an analyst, a verifier can
// filter them. This example runs a permissive join, then grades two
// verifiers against the generator's ground truth: the template/redundancy
// verifier (re-examines the corpus contexts of each tuple, as the paper's
// template-based verification does) and the exact gold verifier. It then
// shows the precision a verification pass buys on the join output.
//
//	go run ./examples/verification
package main

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

func main() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 1500, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	plan := joinopt.Plan{
		Algorithm: joinopt.IndependentJoin,
		Theta:     [2]float64{0.4, 0.4},
		X:         [2]joinopt.Strategy{joinopt.Scan, joinopt.Scan},
	}
	res, err := task.Run(context.Background(), joinopt.Requirement{}, joinopt.WithPlan(plan))
	if err != nil {
		log.Fatal(err)
	}
	out := res.Outcome
	tuples := out.Tuples()
	rawPrecision := float64(out.GoodTuples) / float64(out.GoodTuples+out.BadTuples)
	fmt.Printf("raw join output: %d good + %d bad (precision %.2f)\n",
		out.GoodTuples, out.BadTuples, rawPrecision)

	// Verify each join tuple by re-checking both base tuples' corpus
	// contexts (template/redundancy verification).
	acceptGood, rejectBad, err := task.VerifierAccuracy(0.6, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template verifier: accepts %.0f%% of good base tuples, rejects %.0f%% of bad ones\n",
		acceptGood[0]*100, rejectBad[0]*100)

	kept, keptGood := 0, 0
	for _, jt := range tuples {
		ok, err := task.VerifyJoinTuple(jt, 0.6, 1)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		kept++
		if jt.Good {
			keptGood++
		}
	}
	if kept > 0 {
		fmt.Printf("after verification: kept %d of %d join tuples, precision %.2f (was %.2f)\n",
			kept, len(tuples), float64(keptGood)/float64(kept), rawPrecision)
	}
	fmt.Println("\nVerification is itself imperfect — it trades recall for precision,")
	fmt.Println("which is why the paper treats it as an evaluation tool, not a free lunch.")
}
