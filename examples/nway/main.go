// N-way join — a declarative 4-relation query planned by the DP join-tree
// enumerator: Headquarters ⋈ Executives ⋈ Mergers ⋈ Headquarters' as a
// cycle on the shared Company attribute. The optimizer picks per-relation
// knob settings, retrieval strategies, and effort budgets against the
// 2^n-class quality composition model, chooses the join tree that
// minimizes merge cost, and executes it by composing the pairwise
// executors over a shared extraction cache.
//
//	go run ./examples/nway
package main

import (
	"context"
	"fmt"
	"log"

	"joinopt"
)

func main() {
	task, err := joinopt.NewQuery(joinopt.WorkloadParams{NumDocs: 450, Seed: 1}, joinopt.Query{
		Relations: []string{"HQ", "EX", "MG", "HQ"},
		Joins:     [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	task.MergeCost = 0.05
	task.ExtractCacheBytes = 32 << 20

	names := task.RelationNames()
	fmt.Printf("%d-way query over:\n", task.Arity())
	for i, n := range names {
		fmt.Printf("  R%d = %s (%d docs)\n", i+1, n, task.Sizes()[i])
	}

	req := joinopt.Requirement{TauG: 10, TauB: 1 << 30}

	// Plan only: the chosen tree, per-relation configuration, and the
	// model's predictions at the chosen efforts.
	plan, err := task.OptimizeQuery(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen plan: %s\n", plan)
	fmt.Printf("predicted: good=%.1f bad=%.1f time=%.0f (merge tuples %.0f)\n",
		plan.EstimatedGood, plan.EstimatedBad, plan.EstimatedTime, plan.EstimatedMergeTuples)

	// Plan and execute in one call.
	res, err := task.Run(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	q := res.Query
	fmt.Printf("\nexecuted: good=%d bad=%d time=%.0f (merge time %.0f)\n",
		q.GoodTuples, q.BadTuples, q.Time, q.MergeTime)
	for i := range names {
		fmt.Printf("  R%d: processed %d docs (retrieved %d)\n",
			i+1, q.DocsProcessed[i], q.DocsRetrieved[i])
	}
	fmt.Printf("  intermediate materializations: %v\n", q.NodeTuples)

	fmt.Println("\nQuality does not decompose over the tree — a bad base tuple")
	fmt.Println("contaminates every k-way combination it joins into — so the")
	fmt.Println("enumerator prices per-leaf knobs with the full 2^n composition")
	fmt.Println("model and uses the tree choice only to minimize merge cost.")
}
