// Observability: attach a trace and a metrics registry to a run and inspect
// what the executors, the fault injectors, and the adaptive optimizer did.
// The trace captures structured events (plan decisions, per-step progress,
// retries, injected faults, checkpoints) stamped with cost-model time; the
// metrics registry keeps live counters and publishes the final Result as
// joinopt_run_* gauges in Prometheus text format.
//
//	go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"joinopt"
)

func main() {
	task, err := joinopt.NewHQJoinEX(joinopt.WorkloadParams{NumDocs: 1500, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Make the run eventful: a small injected fault rate exercises the
	// retry path, so the trace shows fault and retry spans too.
	task.Faults, err = joinopt.ParseFaultProfile("rate=0.02,seed=7")
	if err != nil {
		log.Fatal(err)
	}

	// A ring sink keeps the last N events in memory — cheap enough to leave
	// on. CreateTraceFile streams NDJSON to disk instead (see cmd/joinopt's
	// -trace flag).
	ring := joinopt.NewRingSink(64)
	trace := joinopt.NewTrace(ring)
	metrics := joinopt.NewMetrics()

	req := joinopt.Requirement{TauG: 16, TauB: 160}
	res, err := task.Run(context.Background(), req,
		joinopt.WithTracer(trace), joinopt.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: plan=%s good=%d bad=%d time=%.0f\n\n",
		res.Outcome.Plan, res.Outcome.GoodTuples, res.Outcome.BadTuples, res.Outcome.Time)

	// The ring holds the tail of the event stream, oldest first.
	events := ring.Events()
	fmt.Printf("trace: %d events total, showing the last %d:\n", ring.Total(), min(8, len(events)))
	for _, ev := range events[max(0, len(events)-8):] {
		fmt.Printf("  t=%8.1f  %-16s side=%d %v\n", ev.T, ev.Kind, ev.Side, ev.Attrs)
	}

	// The registry snapshot: live joinopt_*_total counters mirror execution;
	// joinopt_run_* gauges match the final Result exactly.
	fmt.Println("\nmetrics (Prometheus text format):")
	if err := metrics.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
