// Three-way join — the paper's stated future work, implemented as an
// extension: Mergers ⋈ Headquarters ⋈ Executives on the shared Company
// attribute answers "which companies merged, where are they headquartered,
// and who runs them?" in one shot. The n-ary composition model predicts the
// output quality of the 3-way independent join before running it.
//
//	go run ./examples/threeway
package main

import (
	"fmt"
	"log"

	"joinopt"
)

func main() {
	task, err := joinopt.NewThreeWay(joinopt.WorkloadParams{NumDocs: 1500, Seed: 4}, "MG", "HQ", "EX")
	if err != nil {
		log.Fatal(err)
	}
	rels := task.Relations()
	fmt.Printf("three-way join: %s ⋈ %s ⋈ %s\n\n", rels[0], rels[1], rels[2])

	for _, theta := range []float64{0.4, 0.8} {
		predGood, predBad, err := task.Predict(theta)
		if err != nil {
			log.Fatal(err)
		}
		out, err := task.Execute([3]float64{theta, theta, theta}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("minSim=%.1f: predicted good=%.0f bad=%.0f | actual good=%d bad=%d (time %.0f)\n",
			theta, predGood, predBad, out.GoodTuples, out.BadTuples, out.Time)
	}

	fmt.Println("\nThe quality composition compounds across relations: a single bad")
	fmt.Println("base tuple contaminates every 3-way combination it joins into, so")
	fmt.Println("precision degrades faster than in the binary case — and the knob")
	fmt.Println("setting matters even more.")
}
