package joinopt

import (
	"joinopt/internal/relation"
	"joinopt/internal/verify"
)

// Verification façade: the evaluation-side substrate of §VII. A template
// (redundancy) verifier re-examines the corpus contexts in which a base
// tuple occurs and accepts it only when enough occurrences match the
// extraction templates strongly. Verifiers are built lazily per side and
// per (minScore, minStrong) configuration and cached on the task.

type verifierKey struct {
	side      int
	minScore  float64
	minStrong int
}

func (t *Task) templateVerifier(side int, minScore float64, minStrong int) (*verify.TemplateVerifier, error) {
	if err := t.binaryOnly("verification"); err != nil {
		return nil, err
	}
	t.verifierMu.Lock()
	defer t.verifierMu.Unlock()
	if t.verifiers == nil {
		t.verifiers = map[verifierKey]*verify.TemplateVerifier{}
	}
	key := verifierKey{side: side, minScore: minScore, minStrong: minStrong}
	if v, ok := t.verifiers[key]; ok {
		return v, nil
	}
	v, err := verify.NewTemplateVerifier(t.w.DB[side], t.w.Sys[side], minScore, minStrong)
	if err != nil {
		return nil, err
	}
	t.verifiers[key] = v
	return v, nil
}

// VerifyJoinTuple re-verifies a join tuple by checking both contributing
// base tuples with the template verifier: the tuple passes only when each
// base tuple has at least minStrong corpus occurrences whose contexts score
// at least minScore against the extraction patterns. This is how output
// would be vetted without gold labels.
func (t *Task) VerifyJoinTuple(jt JoinTuple, minScore float64, minStrong int) (bool, error) {
	v1, err := t.templateVerifier(0, minScore, minStrong)
	if err != nil {
		return false, err
	}
	v2, err := t.templateVerifier(1, minScore, minStrong)
	if err != nil {
		return false, err
	}
	return v1.Verify(relation.Tuple{A1: jt.A, A2: jt.B}) &&
		v2.Verify(relation.Tuple{A1: jt.A, A2: jt.C}), nil
}

// VerifierAccuracy grades the template verifier per side against the gold
// sets: acceptGood[i] is the fraction of side-i gold good tuples accepted,
// rejectBad[i] the fraction of gold bad tuples rejected.
func (t *Task) VerifierAccuracy(minScore float64, minStrong int) (acceptGood, rejectBad [2]float64, err error) {
	for side := 0; side < 2; side++ {
		v, verr := t.templateVerifier(side, minScore, minStrong)
		if verr != nil {
			return acceptGood, rejectBad, verr
		}
		acceptGood[side], rejectBad[side] = verify.Accuracy(v, t.w.DB[side].Gold(t.w.Task[side]))
	}
	return acceptGood, rejectBad, nil
}
