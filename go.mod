module joinopt

go 1.22
