// Executor benchmarks for the pipelined execution engine: each of the three
// join algorithms runs to exhaustion over the 8k-document corpus, sequential
// versus a 4-worker pipeline. `make bench-json` runs exactly these (plus the
// plan-space bench) and cmd/benchjson turns the output into BENCH_exec.json.
package joinopt_test

import (
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
)

// benchExec runs spec to exhaustion once per iteration, with the extraction
// memo dropped each time so every iteration performs the full IE work — the
// quantity the pipeline overlaps. The seq/workers4 pair is what the
// benchstat smoke and benchjson -check compare.
func benchExec(b *testing.B, spec optimizer.PlanSpec) {
	w := bench8kWorkload(b)
	run := func(b *testing.B, workers int) {
		w.ExecWorkers = workers
		defer func() { w.ExecWorkers = 0 }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.Sys[0].ResetCache()
			w.Sys[1].ResetCache()
			exec, err := w.NewExecutor(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := join.Run(exec, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 0) })
	b.Run("workers4", func(b *testing.B) { run(b, 4) })
}

func BenchmarkExecIDJN8k(b *testing.B) {
	benchExec(b, optimizer.PlanSpec{
		JN:    optimizer.IDJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	})
}

func BenchmarkExecOIJN8k(b *testing.B) {
	benchExec(b, optimizer.PlanSpec{
		JN:    optimizer.OIJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, ""},
	})
}

func BenchmarkExecZGJN8k(b *testing.B) {
	benchExec(b, optimizer.PlanSpec{
		JN:    optimizer.ZGJN,
		Theta: [2]float64{0.4, 0.4},
	})
}
