// Executor benchmarks for the pipelined execution engine: each of the three
// join algorithms runs to exhaustion over the 8k-document corpus, sequential
// versus a 4-worker pipeline. `make bench-json` runs exactly these (plus the
// plan-space bench) and cmd/benchjson turns the output into BENCH_exec.json.
package joinopt_test

import (
	"fmt"
	"testing"

	"joinopt/internal/join"
	"joinopt/internal/optimizer"
	"joinopt/internal/retrieval"
	"joinopt/internal/shard"
)

// benchExec runs spec to exhaustion once per iteration, with the extraction
// memo dropped each time so every iteration performs the full IE work — the
// quantity the pipeline overlaps. The seq/workers4 pair is what the
// benchstat smoke and benchjson -check compare.
func benchExec(b *testing.B, spec optimizer.PlanSpec) {
	w := bench8kWorkload(b)
	run := func(b *testing.B, workers int) {
		w.ExecWorkers = workers
		defer func() { w.ExecWorkers = 0 }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.Sys[0].ResetCache()
			w.Sys[1].ResetCache()
			exec, err := w.NewExecutor(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := join.Run(exec, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 0) })
	b.Run("workers4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkExecShardedIDJN8k measures scatter-gather scaling: the IDJN full
// scan over the 8k corpus at 1, 2, 4, and 8 shards with no extra pipeline
// workers, so the shards are the only parallelism. shards1 is literally
// today's sequential executor (shard counts below 2 take the unsharded
// path). benchjson -check gates shards4 at ≥ 2.5× over shards1 on multi-core
// runners (-min-shard-speedup); the shard.EffectiveSpeedup curve the
// optimizer divides predicted scan/extract time by is fitted to this
// benchmark's measurements.
func BenchmarkExecShardedIDJN8k(b *testing.B) {
	spec := optimizer.PlanSpec{
		JN:    optimizer.IDJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	}
	w := bench8kWorkload(b)
	run := func(b *testing.B, shards int) {
		w.Shards = shards
		if shards >= 2 {
			w.ShardSet = shard.NewSet(shard.Partition{N: shards}, 0)
		}
		defer func() { w.Shards = 0; w.ShardSet = nil }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.Sys[0].ResetCache()
			w.Sys[1].ResetCache()
			exec, err := w.NewExecutor(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := join.Run(exec, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("shards%d", n), func(b *testing.B) { run(b, n) })
	}
}

func BenchmarkExecIDJN8k(b *testing.B) {
	benchExec(b, optimizer.PlanSpec{
		JN:    optimizer.IDJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, retrieval.SC},
	})
}

func BenchmarkExecOIJN8k(b *testing.B) {
	benchExec(b, optimizer.PlanSpec{
		JN:    optimizer.OIJN,
		Theta: [2]float64{0.4, 0.4},
		X:     [2]retrieval.Kind{retrieval.SC, ""},
	})
}

func BenchmarkExecZGJN8k(b *testing.B) {
	benchExec(b, optimizer.PlanSpec{
		JN:    optimizer.ZGJN,
		Theta: [2]float64{0.4, 0.4},
	})
}
